package taint

import (
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/dex"
)

var (
	refGetIMEI = dex.MethodRef{Class: "android.telephony.TelephonyManager",
		Name: "getDeviceId", Sig: "()Ljava/lang/String;"}
	refGetLoc = dex.MethodRef{Class: "android.location.LocationManager",
		Name: "getLastKnownLocation", Sig: "(Ljava/lang/String;)Landroid/location/Location;"}
	refSinkHTTP = dex.MethodRef{Class: "java.net.HttpURLConnection",
		Name: "write", Sig: "(Ljava/lang/String;)V"}
	refSinkSMS = dex.MethodRef{Class: "android.telephony.SmsManager",
		Name: "sendTextMessage", Sig: "(Ljava/lang/String;Ljava/lang/String;)V"}
	refQuery = dex.MethodRef{Class: "android.content.ContentResolver",
		Name: "query", Sig: "(Landroid/net/Uri;)Landroid/database/Cursor;"}
)

func TestDirectLeak(t *testing.T) {
	b := dex.NewBuilder()
	m := b.Class("com.ads.Tracker", "java.lang.Object").
		Method("track", dex.ACCPublic, 4, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 1).
		MoveResult(2).
		NewInstance(3, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 3, 2).
		ReturnVoid().Done()

	res := Analyze(b.File())
	if len(res.Leaks) != 1 {
		t.Fatalf("leaks = %+v, want 1", res.Leaks)
	}
	l := res.Leaks[0]
	if l.Type != android.DTIMEI || l.Category != android.CatPhoneIdentity ||
		l.Class != "com.ads.Tracker" || l.Method != "track" {
		t.Fatalf("leak = %+v", l)
	}
	if !res.SourcesSeen[android.DTIMEI] {
		t.Fatal("source not recorded")
	}
}

func TestNoLeakWithoutSink(t *testing.T) {
	b := dex.NewBuilder()
	m := b.Class("com.app.Reader", "java.lang.Object").
		Method("read", dex.ACCPublic, 3, "Ljava/lang/String;")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 1).
		MoveResult(2).
		Return(2).Done()
	res := Analyze(b.File())
	if len(res.Leaks) != 0 {
		t.Fatalf("unexpected leaks: %+v", res.Leaks)
	}
	if !res.SourcesSeen[android.DTIMEI] {
		t.Fatal("SourcesSeen should record read-without-leak")
	}
}

func TestUntaintedSinkIsClean(t *testing.T) {
	b := dex.NewBuilder()
	m := b.Class("com.app.Logger", "java.lang.Object").
		Method("log", dex.ACCPublic, 3, "V")
	m.ConstString(1, "hello").
		NewInstance(2, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 2, 1).
		ReturnVoid().Done()
	res := Analyze(b.File())
	if len(res.Leaks) != 0 {
		t.Fatalf("constant data flagged as leak: %+v", res.Leaks)
	}
}

func TestInterproceduralReturnFlow(t *testing.T) {
	// source in helper, sink in caller: helper() returns IMEI.
	b := dex.NewBuilder()
	cls := b.Class("com.sdk.Lib", "java.lang.Object")
	h := cls.Method("getId", dex.ACCPublic, 3, "Ljava/lang/String;")
	h.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 1).
		MoveResult(2).
		Return(2).Done()
	m := cls.Method("send", dex.ACCPublic, 4, "V")
	m.InvokeVirtual(dex.MethodRef{Class: "com.sdk.Lib", Name: "getId",
		Sig: "()Ljava/lang/String;"}, 0).
		MoveResult(1).
		NewInstance(2, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 2, 1).
		ReturnVoid().Done()

	res := Analyze(b.File())
	if len(res.Leaks) != 1 || res.Leaks[0].Type != android.DTIMEI {
		t.Fatalf("interprocedural return flow missed: %+v", res.Leaks)
	}
}

func TestInterproceduralParamToSink(t *testing.T) {
	// source in caller, sink in callee: exfil(data) writes to network.
	b := dex.NewBuilder()
	cls := b.Class("com.sdk.Lib", "java.lang.Object")
	ex := cls.Method("exfil", dex.ACCPublic, 3, "V", "Ljava/lang/String;")
	ex.NewInstance(2, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 2, 1).
		ReturnVoid().Done()
	m := cls.Method("collect", dex.ACCPublic, 4, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 1).
		MoveResult(2).
		InvokeVirtual(dex.MethodRef{Class: "com.sdk.Lib", Name: "exfil",
			Sig: "(Ljava/lang/String;)V"}, 0, 2).
		ReturnVoid().Done()

	res := Analyze(b.File())
	if len(res.Leaks) != 1 || res.Leaks[0].Type != android.DTIMEI {
		t.Fatalf("param-to-sink flow missed: %+v", res.Leaks)
	}
	// Attribution is at the call site that supplied tainted data.
	if res.Leaks[0].Method != "collect" {
		t.Fatalf("leak attributed to %q, want collect", res.Leaks[0].Method)
	}
}

func TestFieldMediatedFlow(t *testing.T) {
	// Taint stored into a field in one method, leaked from another.
	fld := dex.FieldRef{Class: "com.sdk.Store", Name: "cache", Type: "Ljava/lang/String;"}
	b := dex.NewBuilder()
	cls := b.Class("com.sdk.Store", "java.lang.Object")
	w := cls.Method("save", dex.ACCPublic, 3, "V")
	w.NewInstance(1, "android.location.LocationManager").
		ConstString(2, "gps").
		InvokeVirtual(refGetLoc, 1, 2).
		MoveResult(2).
		SPut(2, fld).
		ReturnVoid().Done()
	r := cls.Method("flush", dex.ACCPublic, 3, "V")
	r.SGet(1, fld).
		NewInstance(2, "android.telephony.SmsManager").
		InvokeVirtual(refSinkSMS, 2, 1).
		ReturnVoid().Done()

	res := Analyze(b.File())
	if len(res.Leaks) != 1 || res.Leaks[0].Type != android.DTLocation {
		t.Fatalf("field-mediated flow missed: %+v", res.Leaks)
	}
	if res.Leaks[0].Method != "flush" {
		t.Fatalf("leak site = %q", res.Leaks[0].Method)
	}
}

func TestContentProviderURISource(t *testing.T) {
	b := dex.NewBuilder()
	m := b.Class("com.sdk.Harvest", "java.lang.Object").
		Method("dump", dex.ACCPublic, 5, "V")
	m.NewInstance(1, "android.content.ContentResolver").
		ConstString(2, "content://sms/inbox").
		InvokeVirtual(refQuery, 1, 2).
		MoveResult(3).
		NewInstance(4, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 4, 3).
		ReturnVoid().Done()

	res := Analyze(b.File())
	if len(res.Leaks) != 1 || res.Leaks[0].Type != android.DTSMS ||
		res.Leaks[0].Category != android.CatContentProvider {
		t.Fatalf("provider leak = %+v", res.Leaks)
	}
}

func TestUnknownProviderURIClean(t *testing.T) {
	b := dex.NewBuilder()
	m := b.Class("com.app.Own", "java.lang.Object").
		Method("q", dex.ACCPublic, 5, "V")
	m.NewInstance(1, "android.content.ContentResolver").
		ConstString(2, "content://com.app.own/data").
		InvokeVirtual(refQuery, 1, 2).
		MoveResult(3).
		NewInstance(4, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 4, 3).
		ReturnVoid().Done()
	res := Analyze(b.File())
	if len(res.Leaks) != 0 {
		t.Fatalf("app-private provider flagged: %+v", res.Leaks)
	}
}

func TestBranchMerging(t *testing.T) {
	// Taint flows through only one branch; the merged state must keep it.
	b := dex.NewBuilder()
	m := b.Class("com.app.Branch", "java.lang.Object").
		Method("f", dex.ACCPublic, 5, "V", "I")
	m.ConstString(2, "clean").
		IfEqz(1, "skip").
		NewInstance(3, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 3).
		MoveResult(2).
		Label("skip").
		NewInstance(4, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 4, 2).
		ReturnVoid().Done()
	res := Analyze(b.File())
	if len(res.Leaks) != 1 {
		t.Fatalf("branch-merged taint missed: %+v", res.Leaks)
	}
}

func TestLoopDoesNotDiverge(t *testing.T) {
	b := dex.NewBuilder()
	m := b.Class("com.app.Loop", "java.lang.Object").
		Method("f", dex.ACCPublic, 5, "V")
	m.Const(1, 0).
		Const(2, 10).
		Label("top").
		IfGe(1, 2, "end").
		NewInstance(3, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 3).
		MoveResult(4).
		Const(0, 1).
		Add(1, 1, 0).
		Goto("top").
		Label("end").
		NewInstance(3, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 3, 4).
		ReturnVoid().Done()
	res := Analyze(b.File())
	if len(res.Leaks) != 1 {
		t.Fatalf("loop-carried taint missed: %+v", res.Leaks)
	}
}

func TestLeakedTypesAndClasses(t *testing.T) {
	b := dex.NewBuilder()
	m := b.Class("com.x.A", "java.lang.Object").Method("f", dex.ACCPublic, 4, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 1).
		MoveResult(2).
		NewInstance(3, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 3, 2).
		ReturnVoid().Done()
	res := Analyze(b.File())
	if got := res.LeakedTypes(); len(got) != 1 || got[0] != android.DTIMEI {
		t.Fatalf("LeakedTypes = %v", got)
	}
	if got := res.LeakClasses(android.DTIMEI); len(got) != 1 || got[0] != "com.x.A" {
		t.Fatalf("LeakClasses = %v", got)
	}
	if got := res.LeakClasses(android.DTSMS); len(got) != 0 {
		t.Fatalf("LeakClasses for unleaked type = %v", got)
	}
}

func TestEmptyFile(t *testing.T) {
	res := Analyze(&dex.File{})
	if len(res.Leaks) != 0 || len(res.SourcesSeen) != 0 {
		t.Fatal("empty file produced results")
	}
}

func TestArrayMediatedFlow(t *testing.T) {
	// Taint stored into an array element and read back still reaches the
	// sink (the array rules are coarse but sound).
	b := dex.NewBuilder()
	m := b.Class("com.app.Arr", "java.lang.Object").
		Method("f", dex.ACCPublic, 8, "V")
	m.Const(1, 2).
		NewArray(2, 1, "Ljava/lang/String;").
		NewInstance(3, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 3).
		MoveResult(4).
		Const(5, 0).
		ArrayPut(4, 2, 5).
		ArrayGet(6, 2, 5).
		NewInstance(7, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 7, 6).
		ReturnVoid().Done()
	res := Analyze(b.File())
	if len(res.Leaks) != 1 || res.Leaks[0].Type != android.DTIMEI {
		t.Fatalf("array-mediated flow missed: %+v", res.Leaks)
	}
}

func TestUnknownExternalCallPropagates(t *testing.T) {
	// Tainted data through an unmodeled external API (e.g. Base64.encode)
	// stays tainted — conservative soundness.
	b := dex.NewBuilder()
	m := b.Class("com.app.Enc", "java.lang.Object").
		Method("f", dex.ACCPublic, 6, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 1).
		MoveResult(2).
		InvokeStatic(dex.MethodRef{Class: "android.util.Base64", Name: "encodeToString",
			Sig: "(Ljava/lang/String;)Ljava/lang/String;"}, 2).
		MoveResult(3).
		NewInstance(4, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 4, 3).
		ReturnVoid().Done()
	res := Analyze(b.File())
	if len(res.Leaks) != 1 {
		t.Fatalf("encoded leak missed: %+v", res.Leaks)
	}
}

func TestVirtualDispatchByNameSummary(t *testing.T) {
	// A call whose static signature differs (virtual dispatch resolved by
	// name) still applies the callee summary.
	b := dex.NewBuilder()
	cls := b.Class("com.sdk.V", "java.lang.Object")
	h := cls.Method("source", dex.ACCPublic, 3, "Ljava/lang/String;", "I")
	h.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 1).
		MoveResult(2).
		Return(2).Done()
	m := cls.Method("go", dex.ACCPublic, 4, "V")
	// Signature omits the int param: resolution falls back to name match.
	m.InvokeVirtual(dex.MethodRef{Class: "com.sdk.V", Name: "source",
		Sig: "()Ljava/lang/String;"}, 0).
		MoveResult(1).
		NewInstance(2, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 2, 1).
		ReturnVoid().Done()
	res := Analyze(b.File())
	if len(res.Leaks) != 1 {
		t.Fatalf("name-dispatched summary missed: %+v", res.Leaks)
	}
}

func TestMultipleTypesOneSink(t *testing.T) {
	b := dex.NewBuilder()
	m := b.Class("com.app.Multi", "java.lang.Object").
		Method("f", dex.ACCPublic, 8, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(refGetIMEI, 1).
		MoveResult(2).
		NewInstance(3, "android.location.LocationManager").
		ConstString(4, "gps").
		InvokeVirtual(refGetLoc, 3, 4).
		MoveResult(5).
		Add(6, 2, 5). // concatenated identifiers
		NewInstance(7, "java.net.HttpURLConnection").
		InvokeVirtual(refSinkHTTP, 7, 6).
		ReturnVoid().Done()
	res := Analyze(b.File())
	types := res.LeakedTypes()
	if len(types) != 2 {
		t.Fatalf("LeakedTypes = %v, want IMEI+Location", types)
	}
}

func TestNativeMethodNoCode(t *testing.T) {
	// Methods without bodies (native) must not disturb the analysis.
	b := dex.NewBuilder()
	cls := b.Class("com.app.N", "java.lang.Object")
	cls.NativeMethod("jni", "V")
	m := cls.Method("f", dex.ACCPublic, 4, "V")
	m.InvokeVirtual(dex.MethodRef{Class: "com.app.N", Name: "jni", Sig: "()V"}, 0).
		ReturnVoid().Done()
	res := Analyze(b.File())
	if len(res.Leaks) != 0 {
		t.Fatalf("native-method file produced leaks: %+v", res.Leaks)
	}
}
