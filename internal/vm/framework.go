package vm

import (
	"errors"
	"fmt"
	"strings"

	"github.com/dydroid/dydroid/internal/dex"
)

// ErrNoActivity is returned by LaunchApp when the manifest declares no
// activity component — the Table II "No activity" failure class the fuzzer
// cannot exercise.
var ErrNoActivity = errors.New("vm: app declares no activity")

// LaunchApp performs the process-start sequence: instantiate the
// android:name Application subclass (if declared) and run its onCreate —
// this executes before any component, which is exactly the hook packers
// exploit (paper §III-D) — then create the launcher activity and run its
// onCreate. It returns the activity instance for the fuzzer to drive.
func (m *VM) LaunchApp() (*Object, error) {
	if appClass := m.App.APK.Manifest.Application.Name; appClass != "" {
		if c := m.resolveClass(appClass); c != nil {
			inst := m.newObject(appClass)
			if init := c.FindMethod("<init>", ""); init != nil {
				if _, err := m.interpret(c, init, []Value{RefVal(inst)}); err != nil {
					return nil, err
				}
			}
			if onCreate := c.FindMethod("onCreate", ""); onCreate != nil {
				m.steps = 0
				if _, err := m.interpret(c, onCreate, []Value{RefVal(inst)}); err != nil {
					return nil, err
				}
			}
		}
	}
	actName := m.App.APK.Manifest.LaunchActivity()
	if actName == "" {
		return nil, fmt.Errorf("%w: %s", ErrNoActivity, m.App.Package)
	}
	actClass := m.resolveClass(actName)
	if actClass == nil {
		return nil, fmt.Errorf("%w: activity class %s missing", ErrAppCrash, actName)
	}
	inst := m.newObject(actName)
	if init := actClass.FindMethod("<init>", ""); init != nil {
		if _, err := m.interpret(actClass, init, []Value{RefVal(inst)}); err != nil {
			return nil, err
		}
	}
	if onCreate := actClass.FindMethod("onCreate", ""); onCreate != nil {
		m.steps = 0
		if _, err := m.interpret(actClass, onCreate, []Value{RefVal(inst), Null}); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// Callbacks lists the UI callback methods the fuzzer can fire on the
// activity: public zero-extra-arg methods whose name starts with "on",
// excluding the lifecycle set. Sorted source order is preserved for
// deterministic fuzzing.
func (m *VM) Callbacks(activity *Object) []string {
	c := m.resolveClass(activity.Class)
	if c == nil {
		return nil
	}
	var out []string
	for _, mm := range c.Methods {
		if mm.Name == "onCreate" || mm.Name == "onResume" || mm.Name == "onPause" ||
			mm.Name == "onDestroy" || mm.Name == "<init>" {
			continue
		}
		if strings.HasPrefix(mm.Name, "on") && mm.Flags&dex.ACCPublic != 0 && len(mm.Params) == 0 {
			out = append(out, mm.Name)
		}
	}
	return out
}

// FireCallback invokes one UI callback on the activity.
func (m *VM) FireCallback(activity *Object, name string) error {
	c := m.resolveClass(activity.Class)
	if c == nil {
		return fmt.Errorf("%w: activity class %s missing", ErrAppCrash, activity.Class)
	}
	mm := c.FindMethod(name, "")
	if mm == nil {
		return fmt.Errorf("%w: no callback %s.%s", ErrAppCrash, activity.Class, name)
	}
	m.steps = 0
	_, err := m.interpret(c, mm, []Value{RefVal(activity)})
	return err
}
