package service

import (
	"encoding/json"

	"github.com/dydroid/dydroid/internal/bouncer"
	"github.com/dydroid/dydroid/internal/core"
)

// RecordVersion stamps every stored verdict. Bump it whenever the record
// shape or the analysis pipeline changes in a way that invalidates cached
// verdicts; the result store then treats old records as misses.
const RecordVersion = 1

// Record is the machine-readable per-app verdict: the JSON the daemon
// serves from /v1/result and `dydroid -json` prints. It is a flattened,
// stable view of core.AppResult plus the optional store review, built so
// marshaling is deterministic — the same APK always serializes to the
// same bytes.
type Record struct {
	// Digest is the APK signing digest, the content address of the store.
	Digest  string `json:"digest"`
	Package string `json:"package"`
	Status  string `json:"status"`
	Crash   string `json:"crash,omitempty"`

	PreFilter   PreFilter   `json:"pre_filter"`
	Obfuscation Obfuscation `json:"obfuscation"`

	Events        []Event        `json:"events,omitempty"`
	Malware       []Malware      `json:"malware,omitempty"`
	Vulns         []Vuln         `json:"vulns,omitempty"`
	PrivacyLeaks  []PrivacyLeak  `json:"privacy_leaks,omitempty"`
	RuntimeEvents []RuntimeEvent `json:"runtime_events,omitempty"`

	// Review is the marketplace Bouncer verdict (absent when the service
	// runs without a reviewer, e.g. `dydroid -json`).
	Review *Review `json:"review,omitempty"`
}

// PreFilter mirrors the static DCL existence check.
type PreFilter struct {
	HasDexDCL    bool `json:"has_dex_dcl"`
	HasNativeDCL bool `json:"has_native_dcl"`
}

// Obfuscation mirrors the Table VI technique report.
type Obfuscation struct {
	Lexical       bool `json:"lexical"`
	Reflection    bool `json:"reflection"`
	Native        bool `json:"native"`
	DEXEncryption bool `json:"dex_encryption"`
	AntiDecompile bool `json:"anti_decompile"`
}

// Event is one DCL event with its attribution.
type Event struct {
	Kind        string `json:"kind"`
	API         string `json:"api"`
	Path        string `json:"path"`
	CallSite    string `json:"call_site"`
	Entity      string `json:"entity"`
	Provenance  string `json:"provenance"`
	SourceURL   string `json:"source_url,omitempty"`
	Intercepted bool   `json:"intercepted"`
}

// Malware is one DroidNative detection over intercepted code.
type Malware struct {
	Path   string  `json:"path"`
	Kind   string  `json:"kind"`
	Family string  `json:"family"`
	Score  float64 `json:"score"`
}

// Vuln is one code-injection-prone load.
type Vuln struct {
	Kind         string `json:"kind"`
	Code         string `json:"code"`
	Path         string `json:"path"`
	OwnerPackage string `json:"owner_package,omitempty"`
}

// PrivacyLeak is one leaked data type with entity attribution.
type PrivacyLeak struct {
	Type string `json:"type"`
	// ExclusivelyThirdParty is true when only third-party code leaked it.
	ExclusivelyThirdParty bool `json:"exclusively_third_party"`
}

// RuntimeEvent is one behavioural event observed during exercise.
type RuntimeEvent struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Review is the store-side verdict.
type Review struct {
	Approved bool   `json:"approved"`
	Reason   string `json:"reason,omitempty"`
}

// NewRecord flattens an analysis result (and optional review verdict)
// into the served record shape.
func NewRecord(digest string, res *core.AppResult, verdict *bouncer.Verdict) *Record {
	rec := &Record{
		Digest:  digest,
		Package: res.Package,
		Status:  string(res.Status),
		PreFilter: PreFilter{
			HasDexDCL:    res.PreFilter.HasDexDCL,
			HasNativeDCL: res.PreFilter.HasNativeDCL,
		},
		Obfuscation: Obfuscation{
			Lexical:       res.Obfuscation.Lexical,
			Reflection:    res.Obfuscation.Reflection,
			Native:        res.Obfuscation.Native,
			DEXEncryption: res.Obfuscation.DEXEncryption,
			AntiDecompile: res.Obfuscation.AntiDecompile,
		},
	}
	if res.Crash != nil {
		rec.Crash = res.Crash.Error()
	}
	for _, ev := range res.Events {
		rec.Events = append(rec.Events, Event{
			Kind:        string(ev.Kind),
			API:         ev.API,
			Path:        ev.Path,
			CallSite:    ev.CallSite,
			Entity:      string(ev.Entity),
			Provenance:  string(ev.Provenance),
			SourceURL:   ev.SourceURL,
			Intercepted: ev.Intercepted != nil,
		})
	}
	for _, hit := range res.Malware {
		rec.Malware = append(rec.Malware, Malware{
			Path: hit.Path, Kind: string(hit.Kind), Family: hit.Family, Score: hit.Score,
		})
	}
	for _, v := range res.Vulns {
		rec.Vulns = append(rec.Vulns, Vuln{
			Kind: string(v.Kind), Code: string(v.Code), Path: v.Path, OwnerPackage: v.OwnerPackage,
		})
	}
	if res.Privacy != nil {
		// LeakedTypes is sorted, keeping the record deterministic.
		for _, dt := range res.Privacy.LeakedTypes() {
			rec.PrivacyLeaks = append(rec.PrivacyLeaks, PrivacyLeak{
				Type:                  string(dt),
				ExclusivelyThirdParty: res.PrivacyByEntity[string(dt)],
			})
		}
	}
	for _, ev := range res.RuntimeEvents {
		rec.RuntimeEvents = append(rec.RuntimeEvents, RuntimeEvent{Kind: ev.Kind, Detail: ev.Detail})
	}
	if verdict != nil {
		rec.Review = &Review{Approved: verdict.Approved, Reason: verdict.Reason}
	}
	return rec
}

// Marshal serializes the record to its canonical served bytes.
func (r *Record) Marshal() (json.RawMessage, error) {
	return json.Marshal(r)
}
