package vm

import (
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/nativebin"
)

func TestPathClassLoaderHook(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.test.pathloader"
	payloadPath := android.InternalDir(pkg) + "files/extra.dex"

	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.ConstString(1, payloadPath).
		NewInstance(2, string(LoaderPath)).
		InvokeDirect(dex.MethodRef{Class: string(LoaderPath), Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/ClassLoader;)V"}, 2, 1, 0).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	if err := dev.Storage.WriteFile(payloadPath, payloadDex(t), pkg, false); err != nil {
		t.Fatal(err)
	}
	hooks := &recHooks{}
	m2, err := New(dev, nil, app, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if len(hooks.loaderInits) != 1 || hooks.loaderInits[0].kind != LoaderPath {
		t.Fatalf("hooks = %+v", hooks.loaderInits)
	}
	// PathClassLoader has no optimized dir.
	if hooks.loaderInits[0].optDir != "" {
		t.Fatalf("optDir = %q", hooks.loaderInits[0].optDir)
	}
}

func TestRuntimeLoad0ARTVariant(t *testing.T) {
	// The paper notes ART only adds load0; the hook layer must cover it.
	nb := nativebin.NewBuilder("libart.so", "arm")
	nb.Symbol("JNI_OnLoad").MovI(0, 0).Ret()
	libBytes, err := nativebin.Encode(nb.Build())
	if err != nil {
		t.Fatal(err)
	}
	dev := android.NewDevice()
	pkg := "com.test.art"
	libPath := android.InternalDir(pkg) + "files/libart.so"

	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.InvokeStatic(dex.MethodRef{Class: "java.lang.Runtime", Name: "getRuntime",
		Sig: "()Ljava/lang/Runtime;"}).
		MoveResult(1).
		ConstString(2, libPath).
		InvokeVirtual(dex.MethodRef{Class: "java.lang.Runtime", Name: "load0",
			Sig: "(Ljava/lang/String;)V"}, 1, 2).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	if err := dev.Storage.WriteFile(libPath, libBytes, pkg, false); err != nil {
		t.Fatal(err)
	}
	hooks := &recHooks{}
	m2, err := New(dev, nil, app, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if len(hooks.nativeLoads) != 1 || hooks.nativeLoads[0].api != LoadZero ||
		hooks.nativeLoads[0].path != libPath {
		t.Fatalf("native loads = %+v", hooks.nativeLoads)
	}
}

func TestMultiFileDexPath(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.test.multi"
	p1 := android.InternalDir(pkg) + "files/a.dex"
	p2 := android.InternalDir(pkg) + "files/b.dex"

	mk := func(class string) []byte {
		b := dex.NewBuilder()
		b.Class(class, "java.lang.Object").
			Method("f", dex.ACCPublic, 1, "V").ReturnVoid().Done()
		data, err := dex.Encode(b.File())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if err := dev.Storage.WriteFile(p1, mk("com.pay.A"), pkg, false); err != nil {
		t.Fatal(err)
	}
	if err := dev.Storage.WriteFile(p2, mk("com.pay.B"), pkg, false); err != nil {
		t.Fatal(err)
	}

	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.ConstString(1, p1+":"+p2).
		ConstString(2, android.InternalDir(pkg)+"odex").
		NewInstance(3, string(LoaderDex)).
		InvokeDirect(dex.MethodRef{Class: string(LoaderDex), Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			3, 1, 2, 0, 0).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	m2, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.LaunchApp(); err != nil {
		t.Fatal(err)
	}
	loaders := m2.Loaders()
	if len(loaders) != 1 {
		t.Fatalf("loaders = %d", len(loaders))
	}
	cl := loaders[0]
	if cl.FindClass("com.pay.A") == nil || cl.FindClass("com.pay.B") == nil {
		t.Fatal("classes from both dexPath entries not loaded")
	}
	// Both files optimized into the odex dir.
	if got := dev.Storage.List(android.InternalDir(pkg) + "odex/"); len(got) != 2 {
		t.Fatalf("odex outputs = %v", got)
	}
}

func TestReflectionRuntime(t *testing.T) {
	// Class.forName + getMethod + Method.invoke — the packer lifecycle
	// construction path.
	dev := android.NewDevice()
	pkg := "com.test.refl"

	b := dex.NewBuilder()
	target := b.Class(pkg+".Hidden", "java.lang.Object")
	tm := target.Method("secret", dex.ACCPublic, 2, "I")
	tm.Const(1, 99).Return(1).Done()

	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 8, "V", "Landroid/os/Bundle;")
	m.ConstString(1, pkg+".Hidden").
		InvokeStatic(dex.MethodRef{Class: "java.lang.Class", Name: "forName",
			Sig: "(Ljava/lang/String;)Ljava/lang/Class;"}, 1).
		MoveResult(2).
		InvokeVirtual(dex.MethodRef{Class: "java.lang.Class", Name: "newInstance",
			Sig: "()Ljava/lang/Object;"}, 2).
		MoveResult(3).
		ConstString(4, "secret").
		InvokeVirtual(dex.MethodRef{Class: "java.lang.Class", Name: "getMethod",
			Sig: "(Ljava/lang/String;)Ljava/lang/reflect/Method;"}, 2, 4).
		MoveResult(5).
		InvokeVirtual(dex.MethodRef{Class: "java.lang.reflect.Method", Name: "invoke",
			Sig: "(Ljava/lang/Object;)Ljava/lang/Object;"}, 5, 3).
		MoveResult(6).
		SPut(6, dex.FieldRef{Class: pkg + ".Main", Name: "result", Type: "I"}).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	m2, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if got := m2.statics[pkg+".Main.result"]; got.AsInt() != 99 {
		t.Fatalf("reflective invoke = %v, want 99", got)
	}
}

func TestChainedDCLLoadedCodeLoadsMore(t *testing.T) {
	// Stage-1 payload itself performs DCL of a stage-2 payload: both hook
	// events fire, and the stack trace of the second names the stage-1
	// class as the call site.
	dev := android.NewDevice()
	pkg := "com.test.chain"
	p1 := android.InternalDir(pkg) + "cache/stage1.dex"
	p2 := android.InternalDir(pkg) + "cache/stage2.dex"

	// Stage 2: trivial.
	b2 := dex.NewBuilder()
	b2.Class("com.stage2.Final", "java.lang.Object").
		Method("f", dex.ACCPublic, 1, "V").ReturnVoid().Done()
	stage2, _ := dex.Encode(b2.File())

	// Stage 1: loads stage 2 in its run().
	b1 := dex.NewBuilder()
	m1 := b1.Class("com.stage1.Loader", "java.lang.Object").
		Method("run", dex.ACCPublic, 6, "V")
	m1.ConstString(1, p2).
		ConstString(2, android.InternalDir(pkg)+"odex").
		NewInstance(3, string(LoaderDex)).
		InvokeDirect(dex.MethodRef{Class: string(LoaderDex), Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			3, 1, 2, 0, 0).
		ReturnVoid().Done()
	stage1, _ := dex.Encode(b1.File())

	if err := dev.Storage.WriteFile(p1, stage1, pkg, false); err != nil {
		t.Fatal(err)
	}
	if err := dev.Storage.WriteFile(p2, stage2, pkg, false); err != nil {
		t.Fatal(err)
	}

	// Host: loads stage 1, instantiates its loader class, calls run().
	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 8, "V", "Landroid/os/Bundle;")
	m.ConstString(1, p1).
		ConstString(2, android.InternalDir(pkg)+"odex").
		NewInstance(3, string(LoaderDex)).
		InvokeDirect(dex.MethodRef{Class: string(LoaderDex), Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			3, 1, 2, 0, 0).
		NewInstance(4, "com.stage1.Loader").
		InvokeVirtual(dex.MethodRef{Class: "com.stage1.Loader", Name: "run", Sig: "()V"}, 4).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	hooks := &recHooks{}
	m2, err := New(dev, nil, app, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if len(hooks.loaderInits) != 2 {
		t.Fatalf("loader inits = %d", len(hooks.loaderInits))
	}
	if hooks.loaderInits[0].stack[0].Class != pkg+".Main" {
		t.Fatalf("stage1 call site = %s", hooks.loaderInits[0].stack[0].Class)
	}
	if hooks.loaderInits[1].stack[0].Class != "com.stage1.Loader" {
		t.Fatalf("stage2 call site = %s", hooks.loaderInits[1].stack[0].Class)
	}
}

func TestStackTraceShape(t *testing.T) {
	// Nested app calls produce a well-formed innermost-first trace.
	dev := android.NewDevice()
	pkg := "com.test.stack"
	b := dex.NewBuilder()
	cls := b.Class(pkg+".Main", "android.app.Activity")
	m := cls.Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.InvokeVirtual(dex.MethodRef{Class: pkg + ".Main", Name: "level1", Sig: "()V"}, 0).
		ReturnVoid().Done()
	l1 := cls.Method("level1", dex.ACCPublic, 4, "V")
	l1.InvokeVirtual(dex.MethodRef{Class: pkg + ".Main", Name: "level2", Sig: "()V"}, 0).
		ReturnVoid().Done()
	l2 := cls.Method("level2", dex.ACCPublic, 4, "V")
	l2.ConstString(1, "x").
		NewInstance(2, string(LoaderDex)).
		InvokeDirect(dex.MethodRef{Class: string(LoaderDex), Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			2, 1, 1, 0, 0).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	hooks := &recHooks{}
	m2, err := New(dev, nil, app, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The load fails (path "x" missing) — but the hook fired first.
	_, lerr := m2.LaunchApp()
	if lerr == nil {
		t.Fatal("expected load failure")
	}
	if len(hooks.loaderInits) != 1 {
		t.Fatalf("hook count = %d", len(hooks.loaderInits))
	}
	st := hooks.loaderInits[0].stack
	if len(st) != 3 {
		t.Fatalf("stack depth = %d: %+v", len(st), st)
	}
	wantMethods := []string{"level2", "level1", "onCreate"}
	for i, want := range wantMethods {
		if st[i].Method != want {
			t.Fatalf("stack[%d] = %+v, want method %s", i, st[i], want)
		}
	}
	if !strings.HasPrefix(st[0].Class, pkg) {
		t.Fatalf("stack[0].Class = %s", st[0].Class)
	}
}

func TestLoadClassesFromAnotherAppsAPK(t *testing.T) {
	// §II: "an application can even use package contexts to retrieve the
	// classes contained in another application" — a PathClassLoader over
	// another app's installed APK archive loads its classes.
	dev := android.NewDevice()
	// The provider app with a useful class.
	pb := dex.NewBuilder()
	pm := pb.Class("com.provider.Util", "java.lang.Object").
		Method("answer", dex.ACCPublic, 2, "I")
	pm.Const(1, 41).Return(1).Done()
	provDex, err := dex.Encode(pb.File())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Packages.Install(&apk.APK{
		Manifest: apk.Manifest{Package: "com.provider", MinSDK: 14},
		Dex:      provDex,
	}); err != nil {
		t.Fatal(err)
	}

	// The consumer loads the provider's APK archive directly.
	pkg := "com.consumer"
	cb := dex.NewBuilder()
	m := cb.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 6, "V", "Landroid/os/Bundle;")
	m.ConstString(1, "/data/app/com.provider.apk").
		NewInstance(2, string(LoaderPath)).
		InvokeDirect(dex.MethodRef{Class: string(LoaderPath), Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/ClassLoader;)V"}, 2, 1, 0).
		NewInstance(3, "com.provider.Util").
		InvokeVirtual(dex.MethodRef{Class: "com.provider.Util", Name: "answer", Sig: "()I"}, 3).
		MoveResult(4).
		SPut(4, dex.FieldRef{Class: pkg + ".Main", Name: "got", Type: "I"}).
		ReturnVoid().Done()
	consDex, err := dex.Encode(cb.File())
	if err != nil {
		t.Fatal(err)
	}
	app := installApp(t, dev, pkg, consDex, nil, "")
	hooks := &recHooks{}
	vmach, err := New(dev, nil, app, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vmach.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if got := vmach.statics[pkg+".Main.got"]; got.AsInt() != 41 {
		t.Fatalf("cross-app class result = %v, want 41", got)
	}
	if len(hooks.loaderInits) != 1 ||
		hooks.loaderInits[0].dexPath != "/data/app/com.provider.apk" {
		t.Fatalf("hook = %+v", hooks.loaderInits)
	}
}

func TestLoaderRejectsContainerWithoutDex(t *testing.T) {
	dev := android.NewDevice()
	empty, err := apkBuildNoDex()
	if err != nil {
		t.Fatal(err)
	}
	pkg := "com.nodex.loader"
	path := android.InternalDir(pkg) + "cache/empty.apk"
	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.ConstString(1, path).
		NewInstance(2, string(LoaderPath)).
		InvokeDirect(dex.MethodRef{Class: string(LoaderPath), Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/ClassLoader;)V"}, 2, 1, 0).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	if err := dev.Storage.WriteFile(path, empty, pkg, false); err != nil {
		t.Fatal(err)
	}
	vmach, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vmach.LaunchApp(); err == nil {
		t.Fatal("loading a dex-less container should crash the app")
	}
}

func apkBuildNoDex() ([]byte, error) {
	return apk.Build(&apk.APK{Manifest: apk.Manifest{Package: "com.empty"}})
}
