package apk

import (
	"archive/zip"
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleAPK() *APK {
	return &APK{
		Manifest: Manifest{
			Package:     "com.example.app",
			VersionCode: 3,
			MinSDK:      16,
			TargetSDK:   18,
			Permissions: []UsesPerm{{Name: "android.permission.INTERNET"}},
			Application: Application{
				Label: "Example",
				Activities: []Component{
					{Name: "com.example.app.Main", Main: true,
						Actions: []Action{{Name: "android.intent.action.MAIN"}}},
					{Name: "com.example.app.Settings"},
				},
				Services: []Component{{Name: "com.example.app.Sync", Exported: true}},
			},
		},
		Dex:        []byte("SDEX-placeholder"),
		Assets:     map[string][]byte{"payload.bin": {1, 2, 3}},
		NativeLibs: map[string][]byte{"libfoo.so": {9, 8, 7}},
		Extra:      map[string][]byte{},
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	a := sampleAPK()
	data, err := Build(a)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Manifest.Package != a.Manifest.Package {
		t.Fatalf("package = %q, want %q", got.Manifest.Package, a.Manifest.Package)
	}
	if !bytes.Equal(got.Dex, a.Dex) {
		t.Fatal("dex bytes differ after round-trip")
	}
	if !bytes.Equal(got.Assets["payload.bin"], a.Assets["payload.bin"]) {
		t.Fatal("asset bytes differ after round-trip")
	}
	if !bytes.Equal(got.NativeLibs["libfoo.so"], a.NativeLibs["libfoo.so"]) {
		t.Fatal("native lib bytes differ after round-trip")
	}
	if len(got.Manifest.Application.Activities) != 2 ||
		got.Manifest.Application.Activities[0].Name != "com.example.app.Main" {
		t.Fatalf("activities not preserved: %+v", got.Manifest.Application.Activities)
	}
	if !got.Manifest.HasPermission("android.permission.INTERNET") {
		t.Fatal("permission lost in round-trip")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := sampleAPK()
	d1, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("Build is not deterministic")
	}
}

func TestVerifySignature(t *testing.T) {
	data, err := Build(sampleAPK())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySignature(data); err != nil {
		t.Fatalf("VerifySignature on fresh build: %v", err)
	}
	// Tamper: rebuild with a different dex but keep the old signature by
	// swapping bytes inside the archive is awkward with zip compression;
	// instead parse, modify, rebuild WITHOUT re-signing by writing the old
	// signature into Extra. Build regenerates the signature, so simulate
	// tampering at the byte level: flip a byte in the dex entry's
	// compressed stream and expect either a parse error or a verify error.
	tampered := append([]byte(nil), data...)
	idx := bytes.Index(tampered, []byte("SDEX-placeholder"))
	if idx < 0 {
		t.Skip("dex stored compressed; byte-level tamper point not found")
	}
	tampered[idx] ^= 0xff
	if err := VerifySignature(tampered); err == nil {
		t.Fatal("VerifySignature accepted tampered archive")
	}
}

func TestVerifySignatureUnsigned(t *testing.T) {
	// An archive without META-INF/MANIFEST.MF must be rejected.
	a := sampleAPK()
	data, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed.Extra[SignatureEntry]; ok {
		t.Fatal("signature should be filtered from Extra on rebuild path")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not a zip")); err == nil {
		t.Fatal("Parse accepted garbage")
	}
}

func TestParseRequiresManifest(t *testing.T) {
	var buf bytes.Buffer
	zw := newZipWith(&buf, map[string][]byte{"classes.dex": {1}})
	_ = zw
	if _, err := Parse(buf.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("Parse without manifest: err = %v", err)
	}
}

func TestManifestHelpers(t *testing.T) {
	m := sampleAPK().Manifest
	if got := m.LaunchActivity(); got != "com.example.app.Main" {
		t.Fatalf("LaunchActivity = %q", got)
	}
	if !m.AddPermission(WriteExternalStorage) {
		t.Fatal("AddPermission reported no change")
	}
	if m.AddPermission(WriteExternalStorage) {
		t.Fatal("AddPermission added duplicate")
	}
	comps := m.Components()
	if len(comps) != 3 {
		t.Fatalf("Components() returned %d, want 3", len(comps))
	}
	if comps[2].Kind != KindService {
		t.Fatalf("component kind = %q, want service", comps[2].Kind)
	}
}

func TestLaunchActivityFallbacks(t *testing.T) {
	m := Manifest{Package: "a.b", Application: Application{
		Activities: []Component{{Name: "a.b.First"}, {Name: "a.b.Second"}},
	}}
	if got := m.LaunchActivity(); got != "a.b.First" {
		t.Fatalf("LaunchActivity fallback = %q", got)
	}
	m.Application.Activities = nil
	if got := m.LaunchActivity(); got != "" {
		t.Fatalf("LaunchActivity with no activities = %q", got)
	}
}

func TestManifestValidate(t *testing.T) {
	tests := []struct {
		name string
		m    Manifest
		ok   bool
	}{
		{"valid", Manifest{Package: "a.b"}, true},
		{"empty package", Manifest{}, false},
		{"space in package", Manifest{Package: "a b"}, false},
		{"empty component", Manifest{Package: "a.b", Application: Application{
			Activities: []Component{{}}}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.m.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, ok = %v", err, tc.ok)
			}
		})
	}
}

func TestHasAntiRepack(t *testing.T) {
	a := sampleAPK()
	if a.HasAntiRepack() {
		t.Fatal("fresh app reports anti-repack")
	}
	a.Extra[AntiRepackEntry] = []byte{1}
	if !a.HasAntiRepack() {
		t.Fatal("marker not detected")
	}
	data, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasAntiRepack() {
		t.Fatal("marker lost in round-trip")
	}
}

func TestClone(t *testing.T) {
	a := sampleAPK()
	cp := a.Clone()
	cp.Dex[0] = 'X'
	cp.Assets["payload.bin"][0] = 99
	cp.Manifest.AddPermission("p.q")
	if a.Dex[0] == 'X' || a.Assets["payload.bin"][0] == 99 {
		t.Fatal("Clone shares byte slices")
	}
	if a.Manifest.HasPermission("p.q") {
		t.Fatal("Clone shares permission slice")
	}
}

func TestPropertyBuildParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			a := &APK{
				Manifest: Manifest{
					Package: "p" + randWord(r) + "." + randWord(r),
					MinSDK:  10 + r.Intn(15),
				},
				Assets:     map[string][]byte{},
				NativeLibs: map[string][]byte{},
				Extra:      map[string][]byte{},
			}
			if r.Intn(2) == 0 {
				a.Dex = randBytes(r, 1+r.Intn(200))
			}
			for i := 0; i < r.Intn(4); i++ {
				a.Assets[randWord(r)+".bin"] = randBytes(r, r.Intn(100))
			}
			for i := 0; i < r.Intn(3); i++ {
				a.NativeLibs["lib"+randWord(r)+".so"] = randBytes(r, r.Intn(100))
			}
			for i := 0; i < r.Intn(3); i++ {
				a.Manifest.Application.Activities = append(a.Manifest.Application.Activities,
					Component{Name: a.Manifest.Package + "." + randWord(r)})
			}
			vals[0] = reflect.ValueOf(a)
		},
	}
	prop := func(a *APK) bool {
		data, err := Build(a)
		if err != nil {
			return false
		}
		if err := VerifySignature(data); err != nil {
			return false
		}
		got, err := Parse(data)
		if err != nil {
			return false
		}
		if got.Manifest.Package != a.Manifest.Package ||
			!bytes.Equal(got.Dex, a.Dex) ||
			len(got.Assets) != len(a.Assets) ||
			len(got.NativeLibs) != len(a.NativeLibs) {
			return false
		}
		for k, v := range a.Assets {
			if !bytes.Equal(got.Assets[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func randWord(r *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	n := 1 + r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

// newZipWith writes a minimal zip for negative tests.
func newZipWith(buf *bytes.Buffer, entries map[string][]byte) error {
	zw := zip.NewWriter(buf)
	for name, data := range entries {
		w, err := zw.Create(name)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return zw.Close()
}

func TestSigningDigest(t *testing.T) {
	a := sampleAPK()
	data, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := SigningDigest(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != 64 || strings.ToLower(d1) != d1 {
		t.Fatalf("digest %q is not lowercase hex sha256", d1)
	}
	// Identical signed contents → identical digest.
	again, err := Build(sampleAPK())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := SigningDigest(again)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest not deterministic: %s vs %s", d1, d2)
	}
	// Any content change moves the digest.
	b := sampleAPK()
	b.Assets["payload.bin"] = []byte{4, 5, 6}
	changed, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := SigningDigest(changed)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("digest unchanged after content change")
	}
}

func TestSigningDigestUnsignedFallback(t *testing.T) {
	// A zip without the signature entry still gets a total identity.
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	w, err := zw.Create(ManifestEntry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("<manifest/>")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := SigningDigest(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 64 {
		t.Fatalf("digest %q", d)
	}
	if _, err := SigningDigest([]byte("not a zip")); err == nil {
		t.Fatal("garbage accepted")
	}
}
