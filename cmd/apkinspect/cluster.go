package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/dydroid/dydroid/internal/cluster"
)

// runCluster implements the cluster subcommand — today a single verb:
//
//	apkinspect cluster status [-json] http://coordinator:8437
//
// It fetches the coordinator's /v1/cluster/status and renders the
// per-node table (health, ring ownership share, queue gauge, snapshot
// version), or the raw JSON with -json.
func runCluster(w io.Writer, args []string) error {
	if len(args) < 1 || args[0] != "status" {
		return fmt.Errorf("usage: apkinspect cluster status [-json] <coordinator-url>")
	}
	fs := flag.NewFlagSet("cluster status", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the raw status JSON instead of the table")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: apkinspect cluster status [-json] <coordinator-url>")
	}
	base := strings.TrimRight(fs.Arg(0), "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(base + "/v1/cluster/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, body)
	}
	if *asJSON {
		_, err := w.Write(append(body, '\n'))
		return err
	}
	var st cluster.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("decode cluster status: %w", err)
	}
	cluster.RenderStatus(w, st)
	return nil
}
