package apk

import (
	"archive/zip"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Well-known entry names and prefixes inside the archive.
const (
	ManifestEntry  = "AndroidManifest.xml"
	DexEntry       = "classes.dex"
	AssetsPrefix   = "assets/"
	LibPrefix      = "lib/armeabi/"
	SignatureEntry = "META-INF/MANIFEST.MF"

	// AntiRepackEntry marks an app protected against repackaging: the
	// apktool analogue fails to rewrite archives containing it, producing
	// the "Rewriting failure" row of Table II.
	AntiRepackEntry = "META-INF/antirepack.bin"
)

// maxEntrySize bounds a single decompressed entry (64 MiB) so hostile
// archives cannot exhaust memory.
const maxEntrySize = 64 << 20

// APK is the parsed form of an application package.
type APK struct {
	Manifest Manifest
	// Dex is the raw classes.dex bytes (SDEX format). Nil when the app
	// ships no bytecode entry.
	Dex []byte
	// Assets maps asset names (without the assets/ prefix) to contents.
	// Packers store their encrypted DEX payload here.
	Assets map[string][]byte
	// NativeLibs maps library file names (e.g. "libshell.so", without the
	// lib/armeabi/ prefix) to SELF bytes.
	NativeLibs map[string][]byte
	// Extra holds any other archive entries verbatim (for example the
	// anti-repackaging marker).
	Extra map[string][]byte
}

// Build serializes the package as a zip archive with a META-INF digest
// manifest (the signing analogue). Output is deterministic.
func Build(a *APK) ([]byte, error) {
	if err := a.Manifest.Validate(); err != nil {
		return nil, fmt.Errorf("apk: build: %w", err)
	}
	manifestXML, err := a.Manifest.MarshalXMLBytes()
	if err != nil {
		return nil, err
	}
	entries := map[string][]byte{ManifestEntry: manifestXML}
	if a.Dex != nil {
		entries[DexEntry] = a.Dex
	}
	for name, data := range a.Assets {
		entries[AssetsPrefix+name] = data
	}
	for name, data := range a.NativeLibs {
		entries[LibPrefix+name] = data
	}
	for name, data := range a.Extra {
		if name == SignatureEntry {
			continue // regenerated below
		}
		entries[name] = data
	}
	entries[SignatureEntry] = signatureManifest(entries)

	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)

	// The archive is assembled in a pooled scratch buffer: the zip layer
	// writes through it freely and only the exact-size result escapes,
	// so steady-state builds stop re-growing a fresh bytes.Buffer per
	// archive (Build dominates the pipeline's allocation profile).
	buf := scratchPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer scratchPool.Put(buf)
	zw := zip.NewWriter(buf)
	for _, name := range names {
		// Store entries uncompressed: the corpus payloads (SDEX, SELF,
		// packed assets) are synthetic and small, and flate accounted for
		// roughly a quarter of pipeline CPU. Identity is unaffected —
		// SigningDigest hashes the signing manifest text, not the archive
		// container bytes.
		w, err := zw.CreateHeader(&zip.FileHeader{Name: name, Method: zip.Store})
		if err != nil {
			return nil, fmt.Errorf("apk: build %s: %w", name, err)
		}
		if _, err := w.Write(entries[name]); err != nil {
			return nil, fmt.Errorf("apk: build %s: %w", name, err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("apk: build: %w", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// scratchPool recycles the serialization buffers behind Build and
// signatureManifest. Buffers grow to the largest archive they have seen
// and stay warm across the run.
var scratchPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// signatureManifest renders a JAR-manifest-style digest list over every
// entry (excluding itself).
func signatureManifest(entries map[string][]byte) []byte {
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	b := scratchPool.Get().(*bytes.Buffer)
	b.Reset()
	defer scratchPool.Put(b)
	b.WriteString("Manifest-Version: 1.0\nCreated-By: dydroid-sim\n\n")
	var hexSum [sha256.Size * 2]byte
	for _, name := range names {
		sum := sha256.Sum256(entries[name])
		hex.Encode(hexSum[:], sum[:])
		b.WriteString("Name: ")
		b.WriteString(name)
		b.WriteString("\nSHA-256-Digest: ")
		b.Write(hexSum[:])
		b.WriteString("\n\n")
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out
}

// parseCalls counts Parse invocations since process start. The
// single-parse pipeline promises exactly one Parse per analyzed app; the
// regression test in internal/experiments asserts that promise against
// this counter so redundant round-trips cannot silently return.
var parseCalls atomic.Int64

// ParseCalls returns the number of Parse invocations so far (test hook).
func ParseCalls() int64 { return parseCalls.Load() }

// Parse reads an APK archive back into its object form.
func Parse(data []byte) (*APK, error) {
	parseCalls.Add(1)
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("apk: parse: %w", err)
	}
	a := &APK{
		Assets:     make(map[string][]byte),
		NativeLibs: make(map[string][]byte),
		Extra:      make(map[string][]byte),
	}
	sawManifest := false
	for _, f := range zr.File {
		content, err := readEntry(f)
		if err != nil {
			return nil, err
		}
		switch {
		case f.Name == ManifestEntry:
			m, err := ParseManifest(content)
			if err != nil {
				return nil, err
			}
			a.Manifest = *m
			sawManifest = true
		case f.Name == DexEntry:
			a.Dex = content
		case strings.HasPrefix(f.Name, AssetsPrefix):
			a.Assets[strings.TrimPrefix(f.Name, AssetsPrefix)] = content
		case strings.HasPrefix(f.Name, LibPrefix):
			a.NativeLibs[strings.TrimPrefix(f.Name, LibPrefix)] = content
		case f.Name == SignatureEntry:
			// Regenerated by Build; keeping it in Extra would go stale.
		default:
			a.Extra[f.Name] = content
		}
	}
	if !sawManifest {
		return nil, fmt.Errorf("apk: parse: missing %s", ManifestEntry)
	}
	return a, nil
}

func readEntry(f *zip.File) ([]byte, error) {
	if f.UncompressedSize64 > maxEntrySize {
		return nil, fmt.Errorf("apk: entry %s is implausibly large (%d bytes)", f.Name, f.UncompressedSize64)
	}
	rc, err := f.Open()
	if err != nil {
		return nil, fmt.Errorf("apk: open %s: %w", f.Name, err)
	}
	defer rc.Close()
	// The header declares the uncompressed size (validated against
	// maxEntrySize above), so read into an exact-size buffer instead of
	// letting io.ReadAll grow-and-copy its way there. A post-read probe
	// catches archives whose payload exceeds the declared size.
	content := make([]byte, f.UncompressedSize64)
	if _, err := io.ReadFull(rc, content); err != nil {
		return nil, fmt.Errorf("apk: read %s: %w", f.Name, err)
	}
	var probe [1]byte
	if n, _ := rc.Read(probe[:]); n > 0 {
		return nil, fmt.Errorf("apk: entry %s larger than declared size", f.Name)
	}
	return content, nil
}

// VerifySignature recomputes the digest manifest over the archive and
// compares it with the stored one. It reports tampering such as an
// attacker swapping classes.dex (the integrity check whose absence on
// dynamically loaded files is the Table IX vulnerability).
func VerifySignature(data []byte) error {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return fmt.Errorf("apk: verify: %w", err)
	}
	entries := make(map[string][]byte)
	var stored []byte
	for _, f := range zr.File {
		content, err := readEntry(f)
		if err != nil {
			return err
		}
		if f.Name == SignatureEntry {
			stored = content
			continue
		}
		entries[f.Name] = content
	}
	if stored == nil {
		return fmt.Errorf("apk: verify: unsigned archive (no %s)", SignatureEntry)
	}
	if want := signatureManifest(entries); !bytes.Equal(stored, want) {
		return fmt.Errorf("apk: verify: digest mismatch — archive was modified after signing")
	}
	return nil
}

// SigningDigest returns the content-addressed identity of an archive:
// the hex SHA-256 over its stored signing manifest, which itself digests
// every entry, so two archives share a digest exactly when their signed
// contents are identical. Unsigned archives fall back to hashing the raw
// bytes, keeping the identity total. This is the key of the vetting
// service's result store.
func SigningDigest(data []byte) (string, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return "", fmt.Errorf("apk: digest: %w", err)
	}
	for _, f := range zr.File {
		if f.Name != SignatureEntry {
			continue
		}
		content, err := readEntry(f)
		if err != nil {
			return "", err
		}
		sum := sha256.Sum256(content)
		return hex.EncodeToString(sum[:]), nil
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// HasAntiRepack reports whether the package carries the anti-repackaging
// marker.
func (a *APK) HasAntiRepack() bool {
	_, ok := a.Extra[AntiRepackEntry]
	return ok
}

// Clone returns a deep copy, used by rewriting passes.
func (a *APK) Clone() *APK {
	cp := &APK{
		Manifest:   a.Manifest,
		Dex:        append([]byte(nil), a.Dex...),
		Assets:     cloneMap(a.Assets),
		NativeLibs: cloneMap(a.NativeLibs),
		Extra:      cloneMap(a.Extra),
	}
	if a.Dex == nil {
		cp.Dex = nil
	}
	cp.Manifest.Permissions = append([]UsesPerm(nil), a.Manifest.Permissions...)
	cp.Manifest.Application.Activities = append([]Component(nil), a.Manifest.Application.Activities...)
	cp.Manifest.Application.Services = append([]Component(nil), a.Manifest.Application.Services...)
	cp.Manifest.Application.Receivers = append([]Component(nil), a.Manifest.Application.Receivers...)
	cp.Manifest.Application.Providers = append([]Component(nil), a.Manifest.Application.Providers...)
	return cp
}

func cloneMap(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}
