// Package service is the online vetting daemon: an HTTP front over the
// DyDroid pipeline (core.Analyzer) and the marketplace review
// (bouncer.Reviewer), backed by the content-addressed result store. It is
// the store-operator deployment shape of the paper's measurement —
// submissions are deduplicated by APK signing digest, analyzed once by a
// bounded worker pool, and every verdict is served from cache thereafter.
//
// Endpoints:
//
//	POST /v1/scan            submit APK bytes; 200 + cached verdict,
//	                         or 202 + job id (the digest), or 429 when
//	                         the queue is full
//	GET  /v1/result/{digest} fetch a verdict; 202 while in flight
//	GET  /v1/trace/{digest}  fetch the analysis span tree of a digest
//	GET  /v1/healthz         liveness + queue occupancy
//	GET  /v1/metricz         text rendering of the metrics registry
//	                         (?format=prom for Prometheus exposition)
//	GET  /debug/pprof/       runtime profiling (net/http/pprof)
//
// Every response that resolves a digest carries an X-Dydroid-Trace
// header naming the trace of its analysis run, servable from the trace
// endpoint once the run completes.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/bouncer"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/resultstore"
	"github.com/dydroid/dydroid/internal/telemetry"
	"github.com/dydroid/dydroid/internal/trace"
)

// Config assembles a Server.
type Config struct {
	// Analyzer runs the DyDroid pipeline on each submission (required).
	Analyzer *core.Analyzer
	// Reviewer, when non-nil, runs the store-side Bouncer review before
	// the pipeline; its verdict travels in the served record.
	Reviewer *bouncer.Reviewer
	// Store persists verdicts across restarts. Nil keeps them in memory
	// only (development mode).
	Store *resultstore.Store
	// Workers is the analysis parallelism (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the submission queue; full queues answer 429
	// (default 64).
	QueueDepth int
	// Metrics receives service counters and job timings; the analyzer and
	// reviewer keep their own wiring. Optional.
	Metrics *metrics.Registry
	// MaxBodyBytes bounds one submission (default 64 MiB).
	MaxBodyBytes int64
	// Traces, when non-nil, stores each submission's analysis span tree
	// keyed by digest, served at GET /v1/trace/{digest}. Optional.
	Traces *trace.Store
	// Fleet aggregates every completed analysis into the mergeable
	// snapshot served at GET /v1/fleet and rendered at GET /v1/dashboard.
	// Nil gets a fresh default aggregator.
	Fleet *telemetry.Aggregator
	// SlowDeadline arms the slow-analysis watchdog: any analysis running
	// past it is logged while still in flight, and its span tree is
	// rendered to the log once it completes. Zero disables the watchdog.
	SlowDeadline time.Duration
	// Journal records ops lifecycle events (queue saturation, drain,
	// slow analyses), served as JSONL at GET /v1/events and folded into
	// the /v1/fleet snapshot. Nil gets a fresh default journal.
	Journal *events.Journal
	// Profiles, when non-nil, is the continuous-profiling recorder: its
	// ring is served at GET /v1/profiles[/{id}], the slow-analysis
	// watchdog and SLO burn-rate alerts trigger captures on it, and its
	// newest window headlines the dashboard. Optional.
	Profiles *profile.Recorder
	// Node names this daemon in journal events (typically its listen
	// address). Optional.
	Node string
	// Logger, when non-nil, receives one structured line per HTTP request
	// (method, path, digest, status, latency, trace ID). Optional.
	Logger *slog.Logger
}

// Server is the vetting daemon. Create with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg Config
	reg *metrics.Registry

	jobs chan *job
	wg   sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	// drainLogged dedups the drain-finished journal event across
	// repeated Shutdown calls.
	drainLogged bool
	inflight    map[string]*job
	// queueDegraded tracks the saturation state so the journal records
	// only the degraded/recovered transitions, not every sample.
	queueDegraded bool
	// results is the verdict authority when no Store is configured;
	// failed pins pipeline errors so GETs can distinguish "analysis
	// failed" from "never seen".
	results map[string]json.RawMessage
	failed  map[string]string

	// analyze is the per-submission work function; tests replace it to
	// block workers or inject failures.
	analyze func(j *job) (*Record, error)
	// now is the clock; tests replace it to pin watchdog elapsed times.
	now func() time.Time
}

type job struct {
	digest string
	data   []byte
	// parent is the upstream span reference from the X-Dydroid-Parent
	// submission header ("" when the scan arrived directly).
	parent string
}

// New validates the config and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Analyzer == nil {
		return nil, errors.New("service: Config.Analyzer is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Fleet == nil {
		cfg.Fleet = telemetry.New(telemetry.Options{})
	}
	if cfg.Journal == nil {
		cfg.Journal = events.NewJournal(0)
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Metrics,
		jobs:     make(chan *job, cfg.QueueDepth),
		inflight: make(map[string]*job),
		results:  make(map[string]json.RawMessage),
		failed:   make(map[string]string),
	}
	s.analyze = s.analyzeAPK
	s.now = time.Now
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the daemon's HTTP routes (wrapped in the request
// logger when Config.Logger is set).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", s.handleScan)
	mux.HandleFunc("GET /v1/result/{digest}", s.handleResult)
	mux.HandleFunc("GET /v1/trace/{digest}", s.handleTrace)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metricz", s.handleMetricz)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/dashboard", s.handleDashboard)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /v1/profiles", s.handleProfiles)
	mux.HandleFunc("GET /v1/profiles/{id}", s.handleProfile)
	// Runtime introspection: profiles, heap, goroutines, execution traces.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s.logging(mux)
}

// TraceID derives the deterministic trace ID of a digest's analysis run
// (its leading 16 hex chars), so clients can compute it from a digest
// without waiting for the X-Dydroid-Trace header.
func TraceID(digest string) string { return trace.IDFromDigest(digest) }

// HeaderParent is the submission header carrying the upstream span
// reference ("traceID:spanID"): a coordinator forwarding a scan stamps
// it so the worker's analysis trace records which routing attempt it
// belongs to, and the coordinator can stitch the trees back together.
const HeaderParent = "X-Dydroid-Parent"

// requestMeta is filled by handlers as they resolve a digest, so the
// logging middleware can report it without re-parsing bodies.
type requestMeta struct {
	digest string
}

type metaKey struct{}

// noteDigest records the request's digest for the access log and stamps
// the X-Dydroid-Trace response header.
func noteDigest(w http.ResponseWriter, r *http.Request, digest string) {
	w.Header().Set("X-Dydroid-Trace", TraceID(digest))
	if m, ok := r.Context().Value(metaKey{}).(*requestMeta); ok {
		m.digest = digest
	}
}

// statusWriter captures the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// logging wraps next with structured request logging; without a
// configured logger the handler chain is untouched.
func (s *Server) logging(next http.Handler) http.Handler {
	if s.cfg.Logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		meta := &requestMeta{}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), metaKey{}, meta)))
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"latency_ms", float64(time.Since(start)) / float64(time.Millisecond),
		}
		if meta.digest != "" {
			attrs = append(attrs, "digest", meta.digest, "trace", TraceID(meta.digest))
		}
		s.cfg.Logger.Info("request", attrs...)
	})
}

// Shutdown stops accepting submissions, drains every queued and in-flight
// job, and returns once the workers exit (or the context expires).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.jobs)
		s.cfg.Journal.Record(events.Event{
			Type: events.DrainStarted, Node: s.cfg.Node,
			Detail: fmt.Sprintf("%d queued, %d in flight", len(s.jobs), len(s.inflight)),
		})
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		drained := !s.drainLogged
		s.drainLogged = true
		s.mu.Unlock()
		if drained {
			s.cfg.Journal.Record(events.Event{Type: events.DrainFinished, Node: s.cfg.Node})
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
}

// scanResponse is the body of non-cached submission answers and pending
// result polls.
type scanResponse struct {
	Digest string `json:"digest"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("service.scan.requests", 1)
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.reg.Add("service.scan.invalid", 1)
		httpError(w, http.StatusRequestEntityTooLarge, "submission exceeds size limit")
		return
	}
	digest, err := apk.SigningDigest(body)
	if err != nil {
		s.reg.Add("service.scan.invalid", 1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	noteDigest(w, r, digest)

	// Fast path: an in-flight twin (singleflight) or a cached verdict.
	s.mu.Lock()
	_, pending := s.inflight[digest]
	s.mu.Unlock()
	if pending {
		s.reg.Add("service.scan.deduped", 1)
		writeJSON(w, http.StatusAccepted, scanResponse{Digest: digest, Status: "pending"})
		return
	}
	if raw, ok := s.lookup(digest); ok {
		s.reg.Add("service.scan.cached", 1)
		writeRaw(w, http.StatusOK, raw)
		return
	}

	// Slow path: enqueue, unless a twin won the race, the queue is full,
	// or the daemon is draining.
	j := &job{digest: digest, data: body, parent: r.Header.Get(HeaderParent)}
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case s.inflight[digest] != nil:
		s.mu.Unlock()
		s.reg.Add("service.scan.deduped", 1)
		writeJSON(w, http.StatusAccepted, scanResponse{Digest: digest, Status: "pending"})
		return
	}
	select {
	case s.jobs <- j:
		s.inflight[digest] = j
		delete(s.failed, digest) // a resubmission retries a failed digest
		s.mu.Unlock()
		s.reg.Add("service.scan.queued", 1)
		s.noteQueueLevel()
		writeJSON(w, http.StatusAccepted, scanResponse{Digest: digest, Status: "queued"})
	default:
		s.mu.Unlock()
		s.reg.Add("service.scan.rejected", 1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, "submission queue is full")
	}
}

// Retry-After bounds: at least 1s (the HTTP-friendly minimum), at most
// 5 minutes so a momentary latency spike cannot park clients for hours.
const (
	minRetryAfter = 1
	maxRetryAfter = 300
)

// coldStartJobLatency stands in for the mean analyze latency before any
// analysis has completed, so even the very first 429 scales with the
// queue that produced it instead of answering the clamp floor.
const coldStartJobLatency = time.Second

// retryAfterSeconds sizes the 429 backoff to the actual backlog: the
// time for the worker pool to drain the current queue, estimated as
// queue length × recent mean analyze latency ÷ workers. Before the first
// completed analysis (or without a metrics registry) the mean is unknown
// and a nominal per-job second stands in.
func (s *Server) retryAfterSeconds() int {
	mean := s.reg.HistSnapshot("service.job").Mean
	if mean <= 0 {
		mean = coldStartJobLatency
	}
	backlog := time.Duration(len(s.jobs)) * mean / time.Duration(s.cfg.Workers)
	secs := int((backlog + time.Second - 1) / time.Second) // ceiling
	if secs < minRetryAfter {
		return minRetryAfter
	}
	if secs > maxRetryAfter {
		return maxRetryAfter
	}
	return secs
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	noteDigest(w, r, digest)
	s.mu.Lock()
	_, pending := s.inflight[digest]
	failMsg, failedOnce := s.failed[digest]
	s.mu.Unlock()
	if pending {
		writeJSON(w, http.StatusAccepted, scanResponse{Digest: digest, Status: "pending"})
		return
	}
	if raw, ok := s.lookup(digest); ok {
		writeRaw(w, http.StatusOK, raw)
		return
	}
	if failedOnce {
		writeJSON(w, http.StatusBadGateway, scanResponse{Digest: digest, Status: "failed", Error: failMsg})
		return
	}
	httpError(w, http.StatusNotFound, "unknown digest")
}

// handleTrace serves the stored analysis span tree of a digest. 404
// covers "tracing disabled", "never analyzed" and "evicted" alike — the
// trace store is bounded, so absence is an expected state.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	noteDigest(w, r, digest)
	if s.cfg.Traces == nil {
		httpError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	raw, err := s.cfg.Traces.GetRaw(digest)
	if err != nil {
		httpError(w, http.StatusNotFound, "no trace for digest")
		return
	}
	writeRaw(w, http.StatusOK, raw)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	inflight := len(s.inflight)
	s.mu.Unlock()
	status := "ok"
	if closed {
		status = "draining"
	}
	// Degraded flags queue saturation (≥80% full) while the node still
	// answers 200: a cluster coordinator deprioritizes a degraded node
	// for new scans before it starts returning 429s.
	queueLen := len(s.jobs)
	degraded := s.queueSaturated(queueLen)
	// The histogram point-read keeps this endpoint cheap enough for tight
	// liveness-probe intervals (no full registry snapshot).
	job := s.reg.HistSnapshot("service.job")
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"degraded":    degraded,
		"queue_len":   queueLen,
		"queue_depth": cap(s.jobs),
		"inflight":    inflight,
		"workers":     s.cfg.Workers,
		"jobs_done":   job.Count,
		"job_p50_ms":  float64(job.P50) / float64(time.Millisecond),
		"job_p99_ms":  float64(job.P99) / float64(time.Millisecond),
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
		if s.cfg.Store != nil {
			st := s.cfg.Store.Stats()
			for _, c := range []struct {
				name  string
				value int64
			}{
				{"dydroid_resultstore_hits_total", st.Hits},
				{"dydroid_resultstore_misses_total", st.Misses},
				{"dydroid_resultstore_cache_hits_total", st.CacheHits},
				{"dydroid_resultstore_puts_total", st.Puts},
				{"dydroid_resultstore_stale_total", st.Stale},
				{"dydroid_resultstore_quarantined_total", st.Quarantined},
			} {
				fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.value)
			}
		}
		s.writeSLOProm(w)
		s.writeCostProm(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.reg.Snapshot().String())
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		fmt.Fprintf(w, "\nresultstore\thits=%d misses=%d cache-hits=%d puts=%d stale=%d quarantined=%d\n",
			st.Hits, st.Misses, st.CacheHits, st.Puts, st.Stale, st.Quarantined)
	}
}

// queueSaturated is the shared degradation predicate: the submission
// queue is ≥80% full.
func (s *Server) queueSaturated(queueLen int) bool {
	return cap(s.jobs) > 0 && queueLen*5 >= cap(s.jobs)*4
}

// noteQueueLevel samples the queue depth into the gauge and journals the
// degraded/recovered transitions (only the edges — a saturated queue
// sampled twice records one event).
func (s *Server) noteQueueLevel() {
	queueLen := len(s.jobs)
	s.reg.SetGauge("service.queue.len", int64(queueLen))
	degraded := s.queueSaturated(queueLen)
	s.mu.Lock()
	changed := degraded != s.queueDegraded
	s.queueDegraded = degraded
	s.mu.Unlock()
	if !changed {
		return
	}
	typ := events.QueueRecovered
	if degraded {
		typ = events.QueueDegraded
	}
	s.cfg.Journal.Record(events.Event{
		Type: typ, Node: s.cfg.Node,
		Detail: fmt.Sprintf("queue %d/%d", queueLen, cap(s.jobs)),
	})
}

// lookup finds a completed verdict in the store (or the in-memory map
// when no store is configured).
func (s *Server) lookup(digest string) (json.RawMessage, bool) {
	if s.cfg.Store != nil {
		raw, err := s.cfg.Store.Get(digest)
		if err == nil {
			return raw, true
		}
		return nil, false
	}
	s.mu.Lock()
	raw, ok := s.results[digest]
	s.mu.Unlock()
	return raw, ok
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		s.noteQueueLevel()
		stop := s.reg.Time("service.job")
		rec, err := s.analyze(j)
		var raw json.RawMessage
		if err == nil {
			raw, err = rec.Marshal()
		}
		if err == nil && s.cfg.Store != nil {
			err = s.cfg.Store.Put(j.digest, raw)
		}
		s.mu.Lock()
		delete(s.inflight, j.digest)
		if err != nil {
			s.failed[j.digest] = err.Error()
		} else if s.cfg.Store == nil {
			s.results[j.digest] = raw
		}
		s.mu.Unlock()
		if err != nil {
			s.reg.Add("service.analyze.errors", 1)
		} else {
			s.reg.Add("service.analyzed", 1)
		}
		stop()
	}
}

// analyzeAPK is the real work function: optional Bouncer review, then the
// full pipeline. Both phases join one trace rooted at a "scan" span
// (ID derived from the digest), stored in the trace store even when the
// run fails — failed scans are exactly the ones worth inspecting. A
// forwarded submission's X-Dydroid-Parent reference is recorded on the
// root span, so the upstream coordinator can graft this tree under its
// routing span. Every completed analysis feeds the fleet aggregator, and
// the slow-analysis watchdog flags runs that blow past
// Config.SlowDeadline.
func (s *Server) analyzeAPK(j *job) (*Record, error) {
	digest, data := j.digest, j.data
	tr := trace.New("scan", trace.WithID(TraceID(digest)), trace.WithDigest(digest))
	if j.parent != "" {
		tr.Root.SetParent(j.parent)
	}
	ctx := trace.ContextWith(context.Background(), tr)
	disarm := s.armWatchdog(digest)
	res, verdict, err := s.analyzeTraced(ctx, data)
	tr.Root.EndErr(err)
	disarm(tr)
	if s.cfg.Traces != nil {
		if perr := s.cfg.Traces.Put(tr); perr != nil {
			s.reg.Add("service.trace.errors", 1)
		}
	}
	if err != nil {
		s.cfg.Fleet.ObserveError(digest, err, tr)
		s.sloTriggers(digest)
		return nil, err
	}
	s.cfg.Fleet.ObserveApp(res, tr)
	if verdict != nil {
		s.cfg.Fleet.ObserveVerdict(verdict.Approved)
	}
	// With this analysis folded in, a burning SLO captures a profile
	// window tagged with the digest that tipped the burn rate.
	s.sloTriggers(digest)
	return NewRecord(digest, res, verdict), nil
}

func (s *Server) analyzeTraced(ctx context.Context, data []byte) (*core.AppResult, *bouncer.Verdict, error) {
	var verdict *bouncer.Verdict
	if s.cfg.Reviewer != nil {
		v, err := s.cfg.Reviewer.ReviewContext(ctx, data)
		if err != nil {
			return nil, nil, fmt.Errorf("service: review: %w", err)
		}
		verdict = &v
	}
	res, err := s.cfg.Analyzer.AnalyzeAPKContext(ctx, data)
	if err != nil {
		return nil, nil, fmt.Errorf("service: analyze: %w", err)
	}
	return res, verdict, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeRaw serves a stored verdict verbatim — the byte-identical
// contract with a fresh pipeline run.
func writeRaw(w http.ResponseWriter, code int, raw json.RawMessage) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(raw)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
