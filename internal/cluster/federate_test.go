package cluster

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/telemetry"
)

// cannedSnapshot builds a worker snapshot with the given counters.
func cannedSnapshot(apps int64, counters map[string]int64) *telemetry.Snapshot {
	s := telemetry.NewSnapshot(0, 0, 0)
	s.Apps = apps
	for k, v := range counters {
		s.Counters[k] = v
	}
	return s
}

func getFleet(t *testing.T, base string) FleetResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("federated fleet: status %d — partial coverage must never be an error", resp.StatusCode)
	}
	var fr FleetResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	return fr
}

// TestFleetFederationMergesAllNodes: the coordinator's /v1/fleet is the
// telemetry.Merge of every node's snapshot.
func TestFleetFederationMergesAllNodes(t *testing.T) {
	a, b, c := newStubNode(t), newStubNode(t), newStubNode(t)
	a.fleet = cannedSnapshot(1, map[string]int64{"apps.dex-dcl": 1})
	b.fleet = cannedSnapshot(2, map[string]int64{"apps.dex-dcl": 2, "apps.remote": 5})
	c.fleet = cannedSnapshot(3, map[string]int64{"apps.native-dcl": 7})
	_, ts, _ := newTestCoordinator(t, Config{ProbeInterval: time.Hour}, a, b, c)

	fr := getFleet(t, ts.URL)
	if fr.Nodes != 3 || fr.NodesMissing != 0 || len(fr.Missing) != 0 {
		t.Fatalf("full fleet = nodes %d missing %d %v", fr.Nodes, fr.NodesMissing, fr.Missing)
	}
	if fr.Snapshot.Apps != 6 || fr.Snapshot.Shards != 3 {
		t.Fatalf("merged apps=%d shards=%d, want 6/3", fr.Snapshot.Apps, fr.Snapshot.Shards)
	}
	for k, want := range map[string]int64{"apps.dex-dcl": 3, "apps.remote": 5, "apps.native-dcl": 7} {
		if got := fr.Snapshot.Counters[k]; got != want {
			t.Fatalf("merged counter %s = %d, want %d", k, got, want)
		}
	}
}

// TestFleetFederationPartialFailure: a worker down mid-merge yields the
// survivors' snapshot plus an explicit nodes_missing count — never an
// error, never a silently-partial report.
func TestFleetFederationPartialFailure(t *testing.T) {
	a, b, c := newStubNode(t), newStubNode(t), newStubNode(t)
	a.fleet = cannedSnapshot(4, map[string]int64{"apps.dex-dcl": 4})
	b.fleet = cannedSnapshot(5, map[string]int64{"apps.dex-dcl": 1})
	c.fleet = cannedSnapshot(6, nil)
	_, ts, reg := newTestCoordinator(t, Config{ProbeInterval: time.Hour}, a, b, c)

	c.ts.Close()
	fr := getFleet(t, ts.URL)
	if fr.NodesMissing != 1 || len(fr.Missing) != 1 || fr.Missing[0] != c.name() {
		t.Fatalf("missing = %d %v, want the dead node named", fr.NodesMissing, fr.Missing)
	}
	if fr.Snapshot.Apps != 9 || fr.Snapshot.Shards != 2 {
		t.Fatalf("survivor merge apps=%d shards=%d, want 9/2", fr.Snapshot.Apps, fr.Snapshot.Shards)
	}
	if got := fr.Snapshot.Counters["apps.dex-dcl"]; got != 5 {
		t.Fatalf("survivor counter = %d, want 5", got)
	}
	if got := reg.Counter("cluster.fleet.partial"); got != 1 {
		t.Fatalf("cluster.fleet.partial = %d", got)
	}

	// A node serving an incompatible snapshot version is also explicit,
	// not silently merged.
	b.mu.Lock()
	b.fleet.Version = telemetry.SnapshotVersion + 1
	b.mu.Unlock()
	fr = getFleet(t, ts.URL)
	if fr.NodesMissing != 2 {
		t.Fatalf("version-mismatched node not counted missing: %+v", fr)
	}
	if fr.Snapshot.Apps != 4 {
		t.Fatalf("merge after mismatch apps=%d, want 4", fr.Snapshot.Apps)
	}
}

// TestFleetFederationAllNodesDown: even a fully dark fleet answers 200
// with an empty snapshot and every node counted missing.
func TestFleetFederationAllNodesDown(t *testing.T) {
	a, b := newStubNode(t), newStubNode(t)
	_, ts, _ := newTestCoordinator(t, Config{ProbeInterval: time.Hour}, a, b)
	a.ts.Close()
	b.ts.Close()
	fr := getFleet(t, ts.URL)
	if fr.NodesMissing != 2 || fr.Snapshot.Apps != 0 || fr.Snapshot.Shards != 0 {
		t.Fatalf("dark fleet = %+v", fr)
	}
}
