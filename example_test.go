package dydroid_test

import (
	"fmt"
	"log"

	"github.com/dydroid/dydroid"
)

// Example runs the DyDroid pipeline over one generated ad-supported app
// and prints the recovered DCL facts — the library's core loop.
func Example() {
	store, err := dydroid.GenerateStore(dydroid.StoreConfig{Seed: 1, Scale: 0.001})
	if err != nil {
		log.Fatal(err)
	}
	analyzer := dydroid.NewAnalyzer(dydroid.Options{
		Seed:        7,
		Network:     store.Network,
		SetupDevice: store.SetupDevice,
	})
	for _, app := range store.Apps {
		if !app.Spec.AdMob {
			continue
		}
		apkBytes, err := store.BuildAPK(app)
		if err != nil {
			log.Fatal(err)
		}
		res, err := analyzer.AnalyzeAPK(apkBytes)
		if err != nil {
			log.Fatal(err)
		}
		ev := res.DexEvents()[0]
		fmt.Println("status:", res.Status)
		fmt.Println("entity:", ev.Entity)
		fmt.Println("provenance:", ev.Provenance)
		fmt.Println("intercepted:", ev.Intercepted != nil)
		break
	}
	// Output:
	// status: exercised
	// entity: third-party
	// provenance: local
	// intercepted: true
}
