package dex

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Disassemble renders the file in a smali-like textual IR, one class per
// entry in the returned map keyed by the Java binary class name. This is
// the output format of the apktool decompiler and the input to the static
// pre-filter and obfuscation rules.
func Disassemble(f *File) map[string]string {
	out := make(map[string]string, len(f.Classes))
	for _, c := range f.Classes {
		out[c.Name] = DisassembleClass(c)
	}
	return out
}

// DisassembleClass renders one class in smali-like text.
func DisassembleClass(c *Class) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".class %s %s\n", flagsOrDefault(c.Flags), JavaToDesc(c.Name))
	fmt.Fprintf(&b, ".super %s\n", JavaToDesc(c.Super))
	if c.SourceFile != "" {
		fmt.Fprintf(&b, ".source %q\n", c.SourceFile)
	}
	for _, ifc := range c.Interfaces {
		fmt.Fprintf(&b, ".implements %s\n", JavaToDesc(ifc))
	}
	for _, fl := range c.Fields {
		fmt.Fprintf(&b, ".field %s %s:%s\n", flagsOrDefault(fl.Flags), fl.Name, fl.Type)
	}
	for _, m := range c.Methods {
		b.WriteString(disassembleMethod(m))
	}
	return b.String()
}

func flagsOrDefault(f AccessFlags) string {
	s := f.String()
	if s == "" {
		return "default"
	}
	return s
}

func disassembleMethod(m *Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".method %s %s%s\n", flagsOrDefault(m.Flags), m.Name, m.Descriptor())
	fmt.Fprintf(&b, "    .registers %d\n", m.Registers)
	// Collect branch targets so we can emit :L<n> labels.
	targets := make(map[int]string)
	for _, in := range m.Code {
		if in.Op.IsBranch() {
			if _, ok := targets[in.Target]; !ok {
				targets[in.Target] = fmt.Sprintf("L%d", len(targets))
			}
		}
	}
	for pc, in := range m.Code {
		if lbl, ok := targets[pc]; ok {
			fmt.Fprintf(&b, "  :%s\n", lbl)
		}
		b.WriteString("    ")
		b.WriteString(formatInstr(in, targets))
		b.WriteByte('\n')
	}
	// A branch may target one past the last instruction only if code is
	// malformed; Validate prevents that, so no trailing label is needed.
	b.WriteString(".end method\n")
	return b.String()
}

func formatInstr(in Instruction, targets map[int]string) string {
	v := func(r int) string { return "v" + strconv.Itoa(r) }
	lbl := func(t int) string { return ":" + targets[t] }
	switch in.Op {
	case OpNop:
		return "nop"
	case OpConst:
		return fmt.Sprintf("const %s, %d", v(in.A), in.Value)
	case OpConstString:
		return fmt.Sprintf("const-string %s, %q", v(in.A), in.Str)
	case OpMove:
		return fmt.Sprintf("move %s, %s", v(in.A), v(in.B))
	case OpMoveResult:
		return fmt.Sprintf("move-result %s", v(in.A))
	case OpNewInstance:
		return fmt.Sprintf("new-instance %s, %s", v(in.A), JavaToDesc(in.Str))
	case OpNewArray:
		return fmt.Sprintf("new-array %s, %s, %s", v(in.A), v(in.B), in.Str)
	case OpIGet:
		return fmt.Sprintf("iget %s, %s, %s", v(in.A), v(in.B), in.Field)
	case OpIPut:
		return fmt.Sprintf("iput %s, %s, %s", v(in.A), v(in.B), in.Field)
	case OpSGet:
		return fmt.Sprintf("sget %s, %s", v(in.A), in.Field)
	case OpSPut:
		return fmt.Sprintf("sput %s, %s", v(in.A), in.Field)
	case OpAdd, OpSub, OpMul, OpDiv, OpXor, OpArrayGet, OpArrayPut:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, v(in.A), v(in.B), v(in.C))
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, v(in.A), v(in.B), lbl(in.Target))
	case OpIfEqz, OpIfNez:
		return fmt.Sprintf("%s %s, %s", in.Op, v(in.A), lbl(in.Target))
	case OpGoto:
		return fmt.Sprintf("goto %s", lbl(in.Target))
	case OpReturn:
		return fmt.Sprintf("return %s", v(in.A))
	case OpReturnVoid:
		return "return-void"
	case OpThrow:
		return fmt.Sprintf("throw %s", v(in.A))
	case OpArrayLength:
		return fmt.Sprintf("array-length %s, %s", v(in.A), v(in.B))
	case OpCheckCast:
		return fmt.Sprintf("check-cast %s, %s", v(in.A), JavaToDesc(in.Str))
	case OpInstanceOf:
		return fmt.Sprintf("instance-of %s, %s, %s", v(in.A), v(in.B), JavaToDesc(in.Str))
	default:
		if in.Op.IsInvoke() {
			args := make([]string, len(in.Args))
			for i, a := range in.Args {
				args[i] = v(a)
			}
			return fmt.Sprintf("%s {%s}, %s", in.Op, strings.Join(args, ", "), in.Method)
		}
		return "op?"
	}
}

// Summary returns a short one-line description of the file, used by
// apkinspect.
func Summary(f *File) string {
	methods := f.MethodCount()
	return fmt.Sprintf("%d classes, %d methods, %d string literals (classes: %s)",
		len(f.Classes), methods, len(f.Strings()),
		strings.Join(firstN(sortedClassNames(f), 5), ", "))
}

func firstN(ss []string, n int) []string {
	if len(ss) > n {
		return append(ss[:n:n], "...")
	}
	return ss
}

// identifiers extracts every class, method and field identifier defined in
// the file. Package segments of class names are included individually.
// The lexical-obfuscation detector consumes this.
func Identifiers(f *File) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(id string) {
		if id != "" && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, c := range f.Classes {
		for _, seg := range strings.Split(c.Name, ".") {
			add(seg)
		}
		for _, fl := range c.Fields {
			add(fl.Name)
		}
		for _, m := range c.Methods {
			if !strings.HasPrefix(m.Name, "<") { // skip <init>/<clinit>
				add(m.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}
