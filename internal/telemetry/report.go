package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/stats"
)

// MeasurementReport renders the deterministic paper-style aggregate
// tables: status mix, DCL prevalence by kind / provenance / entity,
// loader APIs, obfuscation and packer adoption, malware, vulnerabilities
// and bouncer verdicts. It depends only on the measurement counters, so
// merging the per-shard snapshots of a partitioned corpus renders the
// byte-identical report of the unpartitioned run.
func (s *Snapshot) MeasurementReport() string {
	var b strings.Builder
	apps := int(s.Apps)
	fmt.Fprintf(&b, "fleet: %d apps across %d shard(s), %d analysis error(s)\n\n",
		s.Apps, s.Shards, s.Errors)

	status := stats.NewTable("Apps by status", "status", "apps")
	for _, st := range []core.Status{
		core.StatusExercised, core.StatusNoDCL, core.StatusUnpackFailure,
		core.StatusRewriteFailure, core.StatusNoActivity, core.StatusCrash,
		core.StatusAnalysisError,
	} {
		if n := s.Counters["status."+string(st)]; n > 0 {
			status.Row(string(st), stats.CountPct(int(n), apps))
		}
	}
	b.WriteString(status.String())
	b.WriteString("\n")

	prev := stats.NewTable("DCL prevalence", "population", "apps")
	for _, r := range []struct{ label, key string }{
		{"DEX candidates (static pre-filter)", "apps.dex-candidate"},
		{"DEX loaders (intercepted)", "apps.dex-dcl"},
		{"Native candidates (static pre-filter)", "apps.native-candidate"},
		{"Native loaders (intercepted)", "apps.native-dcl"},
		{"Remote code (policy violation)", "apps.remote"},
	} {
		prev.Row(r.label, stats.CountPct(int(s.Counters[r.key]), apps))
	}
	b.WriteString(prev.String())
	b.WriteString("\n")

	if t := s.counterTable("DCL events by loader API", "API", "events", "dcl.api."); t != "" {
		b.WriteString(t)
		b.WriteString("\n")
	}
	if t := s.counterTable("DCL events by provenance", "provenance", "events", "dcl.provenance."); t != "" {
		b.WriteString(t)
		b.WriteString("\n")
	}
	if t := s.counterTable("DCL events by responsible entity", "entity", "events", "dcl.entity."); t != "" {
		b.WriteString(t)
		b.WriteString("\n")
	}

	ent := stats.NewTable("Responsible entity (apps with DCL)", "", "own", "3rd-party", "both")
	ent.Row("DEX",
		s.Counters["apps.dex-entity.own"],
		s.Counters["apps.dex-entity.third-party"],
		s.Counters["apps.dex-entity.both"])
	ent.Row("Native",
		s.Counters["apps.native-entity.own"],
		s.Counters["apps.native-entity.third-party"],
		s.Counters["apps.native-entity.both"])
	b.WriteString(ent.String())
	b.WriteString("\n")

	obf := stats.NewTable("Obfuscation & packers", "technique", "apps")
	for _, r := range []struct{ label, key string }{
		{"Lexical", "obfuscation.lexical"},
		{"Reflection", "obfuscation.reflection"},
		{"Native", "obfuscation.native"},
		{"DEX encryption (packed)", "obfuscation.dex-encryption"},
		{"Anti-decompilation", "obfuscation.anti-decompile"},
	} {
		obf.Row(r.label, stats.CountPct(int(s.Counters[r.key]), apps))
	}
	b.WriteString(obf.String())
	b.WriteString("\n")

	sec := stats.NewTable("Security outcomes", "outcome", "count")
	sec.Row("Apps with malware", stats.CountPct(int(s.Counters["apps.malware"]), apps))
	sec.Row("Malware hits (files)", s.Counters["malware.hits"])
	sec.Row("Apps with risky DCL (vulns)", stats.CountPct(int(s.Counters["apps.vulnerable"]), apps))
	sec.Row("Apps leaking private data", stats.CountPct(int(s.Counters["apps.privacy-leak"]), apps))
	sec.Row("Bouncer approved", s.Counters["verdict.approved"])
	sec.Row("Bouncer rejected", s.Counters["verdict.rejected"])
	b.WriteString(sec.String())

	if t := s.counterTable("Malware by family", "family", "files", "malware.family."); t != "" {
		b.WriteString("\n")
		b.WriteString(t)
	}
	if t := s.counterTable("Vulnerable loads by kind", "kind", "loads", "vuln."); t != "" {
		b.WriteString("\n")
		b.WriteString(t)
	}

	if len(s.TopEntities.Entries) > 0 {
		b.WriteString("\n")
		top := stats.NewTable(
			fmt.Sprintf("Top third-party entities (space-saving, k=%d)", s.TopEntities.K),
			"call site", "loads", "±err")
		for _, e := range s.TopEntities.Entries {
			top.Row(e.Key, e.Count, e.Err)
		}
		b.WriteString(top.String())
	}
	return b.String()
}

// counterTable renders every counter under prefix as a sorted two-column
// table ("" when none exist).
func (s *Snapshot) counterTable(title, keyHeader, valHeader, prefix string) string {
	var keys []string
	for k := range s.Counters {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	t := stats.NewTable(title, keyHeader, valHeader)
	for _, k := range keys {
		t.Row(strings.TrimPrefix(k, prefix), s.Counters[k])
	}
	return t.String()
}

// LatencyReport renders the stage-latency histograms and the slowest
// analyses. Unlike MeasurementReport it reflects wall-clock timings, so
// two runs over the same corpus render different (but same-shaped)
// sections.
func (s *Snapshot) LatencyReport() string {
	var b strings.Builder
	if len(s.Stages) > 0 {
		names := make([]string, 0, len(s.Stages))
		for name := range s.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		t := stats.NewTable("Stage latency (mergeable histograms)",
			"span", "count", "mean", "p50", "p90", "p99", "max")
		for _, name := range names {
			h := s.Stages[name]
			t.Row(name, h.Count, roundDur(h.Mean()), roundDur(h.Quantile(0.50)),
				roundDur(h.Quantile(0.90)), roundDur(h.Quantile(0.99)),
				roundDur(time.Duration(h.MaxNS)))
		}
		b.WriteString(t.String())
	}
	if len(s.SlowestApps.Entries) > 0 {
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		t := stats.NewTable("Slowest analyses", "package", "digest", "total")
		for _, e := range s.SlowestApps.Entries {
			t.Row(e.Package, shortDigest(e.Digest), roundDur(time.Duration(e.NS)))
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// CostReport renders the per-stage resource attribution table: CPU time
// and allocations the profiling meter attributed to each pipeline
// stage, totalled and per metered span. Like every aggregate it merges
// exactly — the table of merged shards equals the single-pass table.
func (s *Snapshot) CostReport() string {
	if len(s.Costs) == 0 {
		return ""
	}
	names := make([]string, 0, len(s.Costs))
	var totalCPU int64
	for name, sc := range s.Costs {
		names = append(names, name)
		totalCPU += sc.CPUNS
	}
	sort.Slice(names, func(i, j int) bool {
		if s.Costs[names[i]].CPUNS != s.Costs[names[j]].CPUNS {
			return s.Costs[names[i]].CPUNS > s.Costs[names[j]].CPUNS
		}
		return names[i] < names[j]
	})
	t := stats.NewTable("Stage cost attribution (process-scoped deltas)",
		"stage", "spans", "cpu", "cpu%", "cpu/span", "allocs", "alloc bytes")
	for _, name := range names {
		sc := s.Costs[name]
		pct := "0.0%"
		if totalCPU > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*float64(sc.CPUNS)/float64(totalCPU))
		}
		var per time.Duration
		if sc.Count > 0 {
			per = time.Duration(sc.CPUNS / sc.Count)
		}
		t.Row(name, sc.Count, roundDur(time.Duration(sc.CPUNS)), pct,
			roundDur(per), sc.AllocObjects, sc.AllocBytes)
	}
	return t.String()
}

// Report renders the full fleet report: the deterministic measurement
// tables followed by the latency and cost-attribution sections.
func (s *Snapshot) Report() string {
	out := s.MeasurementReport()
	if lat := s.LatencyReport(); lat != "" {
		out += "\n" + lat
	}
	if cost := s.CostReport(); cost != "" {
		out += "\n" + cost
	}
	return out
}

func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	if d == "" {
		return "-"
	}
	return d
}

func roundDur(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}
