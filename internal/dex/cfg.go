package dex

import (
	"fmt"
	"sort"
	"strings"
)

// BasicBlock is a maximal straight-line instruction sequence within a
// method body. Instruction indices are into Method.Code; Succs are indices
// into CFG.Blocks.
type BasicBlock struct {
	Index int // position within CFG.Blocks
	Start int // first instruction index (inclusive)
	End   int // last instruction index (exclusive)
	Succs []int
	Preds []int
}

// CFG is the control-flow graph of a single method.
type CFG struct {
	Method *Method
	Blocks []*BasicBlock
}

// BuildCFG partitions the method body into basic blocks and links
// successor edges. A method with no code yields an empty graph.
func BuildCFG(m *Method) *CFG {
	g := &CFG{Method: m}
	if len(m.Code) == 0 {
		return g
	}
	// Leaders: instruction 0, branch targets, instructions following
	// branches and terminators.
	leaders := map[int]bool{0: true}
	for pc, in := range m.Code {
		if in.Op.IsBranch() {
			leaders[in.Target] = true
		}
		if (in.Op.IsBranch() || in.Op.IsTerminator()) && pc+1 < len(m.Code) {
			leaders[pc+1] = true
		}
	}
	starts := make([]int, 0, len(leaders))
	for pc := range leaders {
		starts = append(starts, pc)
	}
	sort.Ints(starts)
	blockAt := make(map[int]int, len(starts)) // start pc -> block index
	for i, s := range starts {
		end := len(m.Code)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		blockAt[s] = i
		g.Blocks = append(g.Blocks, &BasicBlock{Index: i, Start: s, End: end})
	}
	for _, b := range g.Blocks {
		last := m.Code[b.End-1]
		addEdge := func(targetPC int) {
			if tb, ok := blockAt[targetPC]; ok {
				b.Succs = append(b.Succs, tb)
				g.Blocks[tb].Preds = append(g.Blocks[tb].Preds, b.Index)
			}
		}
		switch {
		case last.Op == OpGoto:
			addEdge(last.Target)
		case last.Op.IsConditional():
			addEdge(last.Target)
			if b.End < len(m.Code) {
				addEdge(b.End)
			}
		case last.Op.IsTerminator():
			// return/throw: no successors
		default:
			if b.End < len(m.Code) {
				addEdge(b.End)
			}
		}
	}
	return g
}

// Instructions returns the instruction slice covered by the block.
func (b *BasicBlock) Instructions(m *Method) []Instruction {
	return m.Code[b.Start:b.End]
}

// String renders the graph in a compact adjacency form, e.g.
// "B0[0,3)->B1,B2 B1[3,5)->B2 B2[5,6)".
func (g *CFG) String() string {
	var parts []string
	for _, b := range g.Blocks {
		s := fmt.Sprintf("B%d[%d,%d)", b.Index, b.Start, b.End)
		if len(b.Succs) > 0 {
			ss := make([]string, len(b.Succs))
			for i, t := range b.Succs {
				ss[i] = fmt.Sprintf("B%d", t)
			}
			s += "->" + strings.Join(ss, ",")
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " ")
}

// Reachable returns the set of block indices reachable from the entry
// block.
func (g *CFG) Reachable() map[int]bool {
	seen := make(map[int]bool)
	if len(g.Blocks) == 0 {
		return seen
	}
	stack := []int{0}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.Blocks[n].Succs...)
	}
	return seen
}
