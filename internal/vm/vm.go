package vm

import (
	"errors"
	"fmt"
	"sync"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/netsim"
)

// valuePool recycles Value slices for interpreter frames and invoke
// argument vectors. interpret allocated one register file per call and
// one argument slice per invoke, which dominated VM allocations under
// the pipeline benchmark. Slices are cleared before reuse so pooled
// frames neither leak stale register contents nor retain Object/Array
// pointers past the call that wrote them.
var valuePool = sync.Pool{New: func() any { return new([]Value) }}

func getValues(n int) *[]Value {
	p := valuePool.Get().(*[]Value)
	if cap(*p) < n {
		*p = make([]Value, n)
	}
	*p = (*p)[:n]
	clear(*p)
	return p
}

func putValues(p *[]Value) {
	clear(*p)
	valuePool.Put(p)
}

// VM errors. App-level failures (crashes) wrap ErrAppCrash so the
// pipeline can classify them into Table II's Crash row.
var (
	// ErrAppCrash marks an unhandled application exception or fault.
	ErrAppCrash = errors.New("vm: application crash")
	// ErrBudget marks step-budget exhaustion in app code.
	ErrBudget = errors.New("vm: execution budget exhausted")
)

// DefaultStepBudget bounds interpreted instructions per top-level
// invocation.
const DefaultStepBudget = 1 << 20

// Event is a runtime behaviour record (transmissions, ads, root attempts)
// surfaced for reporting and examples.
type Event struct {
	Kind   string // e.g. "transmit", "sms", "notification-ad", "root", "ptrace", "shortcut", "homepage"
	Detail string
	Data   string
}

// VM executes one application's bytecode within a device. It is not safe
// for concurrent use; run one app per VM.
type VM struct {
	Device  *android.Device
	Network *netsim.Network
	Hooks   Hooks
	Factory *netsim.Factory

	App     *android.InstalledApp
	Process *android.Process

	StepBudget int

	bootClasses map[string]*dex.Class
	loaders     []*ClassLoader
	nativeLibs  []*loadedLib
	frames      []StackElement
	statics     map[string]Value // "Class.field" -> value
	nextHash    int
	lastResult  Value
	events      []Event
	fds         map[int64]*fdEntry
	nextFD      int64
	steps       int
}

type fdEntry struct {
	path  string
	data  []byte
	pos   int64
	dirty bool
}

// New creates a VM for the installed app. recorder may be nil (no
// download tracking); hooks may be nil (no DCL instrumentation).
func New(dev *android.Device, net *netsim.Network, app *android.InstalledApp, hooks Hooks, recorder netsim.Recorder) (*VM, error) {
	if hooks == nil {
		hooks = NopHooks{}
	}
	m := &VM{
		Device:      dev,
		Network:     net,
		Hooks:       hooks,
		Factory:     netsim.NewFactory(recorder),
		App:         app,
		StepBudget:  DefaultStepBudget,
		bootClasses: make(map[string]*dex.Class),
		statics:     make(map[string]Value),
		nextHash:    0x4000,
		fds:         make(map[int64]*fdEntry),
		nextFD:      3,
	}
	if df := app.Decoded; df != nil {
		// Pre-decoded bytecode from the single-parse pipeline: the VM
		// never mutates decoded classes (statics live in m.statics), so
		// the same *dex.File is safely shared across runs and replays.
		for _, c := range df.Classes {
			m.bootClasses[c.Name] = c
		}
	} else if app.APK.Dex != nil {
		df, err := dex.Decode(app.APK.Dex)
		if err != nil {
			return nil, fmt.Errorf("vm: app %s: %w", app.Package, err)
		}
		for _, c := range df.Classes {
			m.bootClasses[c.Name] = c
		}
	}
	m.Process = dev.StartProcess(app.Package, 10000+len(app.Package))
	return m, nil
}

// Events returns runtime behaviour events recorded so far.
func (m *VM) Events() []Event { return append([]Event(nil), m.events...) }

func (m *VM) event(kind, detail, data string) {
	m.events = append(m.events, Event{Kind: kind, Detail: detail, Data: data})
}

// Loaders returns the class loaders created during execution.
func (m *VM) Loaders() []*ClassLoader { return append([]*ClassLoader(nil), m.loaders...) }

// StackTrace returns the current Java stack trace, innermost frame first —
// matching Throwable.getStackTrace order, where element [0] is the code
// that called into the framework (paper Fig. 2's call-site element).
func (m *VM) StackTrace() []StackElement {
	out := make([]StackElement, 0, len(m.frames))
	for i := len(m.frames) - 1; i >= 0; i-- {
		out = append(out, m.frames[i])
	}
	return out
}

func (m *VM) newObject(class string) *Object {
	m.nextHash++
	return &Object{Class: class, Hash: m.nextHash}
}

func (m *VM) newArray(n int) *Array {
	m.nextHash++
	return &Array{Elems: make([]Value, n), Hash: m.nextHash}
}

// resolveClass finds a class definition by name: app classes first, then
// classes defined by any loader created at runtime.
func (m *VM) resolveClass(name string) *dex.Class {
	if c, ok := m.bootClasses[name]; ok {
		return c
	}
	for _, cl := range m.loaders {
		if c, ok := cl.classes[name]; ok {
			return c
		}
	}
	return nil
}

// resolveMethod finds the method body for a call: walk the dynamic class
// and its superclasses, then fall back to the static reference class.
func (m *VM) resolveMethod(dynClass string, ref dex.MethodRef) (*dex.Class, *dex.Method) {
	for name := dynClass; name != ""; {
		c := m.resolveClass(name)
		if c == nil {
			break
		}
		if mm := c.FindMethod(ref.Name, ref.Sig); mm != nil {
			return c, mm
		}
		name = c.Super
	}
	if c := m.resolveClass(ref.Class); c != nil {
		if mm := c.FindMethod(ref.Name, ref.Sig); mm != nil {
			return c, mm
		}
	}
	return nil, nil
}

// InvokeMethod runs a method by class and name with the given arguments
// (for instance methods args[0] is the receiver). It is the entry point
// the framework and the monkey use to drive components.
func (m *VM) InvokeMethod(className, methodName string, args ...Value) (Value, error) {
	m.steps = 0
	ref := dex.MethodRef{Class: className, Name: methodName}
	return m.invoke(className, ref, args)
}

// invoke dispatches a call: system classes go to the native
// implementations; app/loaded classes are interpreted; ACC_NATIVE methods
// go through JNI.
func (m *VM) invoke(dynClass string, ref dex.MethodRef, args []Value) (Value, error) {
	if v, handled, err := m.systemInvoke(ref, args); handled {
		return v, err
	}
	cls, method := m.resolveMethod(dynClass, ref)
	if method == nil {
		return Null, fmt.Errorf("%w: no such method %s.%s%s", ErrAppCrash, ref.Class, ref.Name, ref.Sig)
	}
	if method.Flags&dex.ACCNative != 0 {
		return m.jniInvoke(cls, method, args)
	}
	return m.interpret(cls, method, args)
}

// interpret executes a bytecode method body.
func (m *VM) interpret(cls *dex.Class, method *dex.Method, args []Value) (Value, error) {
	if len(m.frames) > 128 {
		return Null, fmt.Errorf("%w: stack overflow in %s.%s", ErrAppCrash, cls.Name, method.Name)
	}
	m.frames = append(m.frames, StackElement{Class: cls.Name, Method: method.Name})
	defer func() { m.frames = m.frames[:len(m.frames)-1] }()

	regsPtr := getValues(method.Registers)
	defer putValues(regsPtr)
	regs := *regsPtr
	// Calling convention: arguments land in the first registers.
	for i, a := range args {
		if i < len(regs) {
			regs[i] = a
		}
	}
	pc := 0
	for pc < len(method.Code) {
		if m.steps++; m.steps > m.StepBudget {
			return Null, fmt.Errorf("%w in %s.%s", ErrBudget, cls.Name, method.Name)
		}
		in := &method.Code[pc]
		switch in.Op {
		case dex.OpNop:
		case dex.OpConst:
			regs[in.A] = IntVal(in.Value)
		case dex.OpConstString:
			regs[in.A] = StrVal(in.Str)
		case dex.OpMove:
			regs[in.A] = regs[in.B]
		case dex.OpMoveResult:
			regs[in.A] = m.lastResult
		case dex.OpNewInstance:
			regs[in.A] = RefVal(m.newObject(in.Str))
		case dex.OpNewArray:
			n := int(regs[in.B].AsInt())
			if n < 0 || n > 1<<20 {
				return Null, fmt.Errorf("%w: new-array length %d in %s.%s", ErrAppCrash, n, cls.Name, method.Name)
			}
			regs[in.A] = ArrVal(m.newArray(n))
		case dex.OpIGet:
			obj := regs[in.B]
			if obj.Kind != KindRef {
				return Null, fmt.Errorf("%w: iget on non-object in %s.%s", ErrAppCrash, cls.Name, method.Name)
			}
			regs[in.A] = obj.Ref.Field(in.Field.Name)
		case dex.OpIPut:
			obj := regs[in.B]
			if obj.Kind != KindRef {
				return Null, fmt.Errorf("%w: iput on non-object in %s.%s", ErrAppCrash, cls.Name, method.Name)
			}
			obj.Ref.SetField(in.Field.Name, regs[in.A])
		case dex.OpSGet:
			regs[in.A] = m.statics[in.Field.Class+"."+in.Field.Name]
		case dex.OpSPut:
			m.statics[in.Field.Class+"."+in.Field.Name] = regs[in.A]
		case dex.OpAdd:
			regs[in.A] = m.binOp(regs[in.B], regs[in.C], '+')
		case dex.OpSub:
			regs[in.A] = IntVal(regs[in.B].AsInt() - regs[in.C].AsInt())
		case dex.OpMul:
			regs[in.A] = IntVal(regs[in.B].AsInt() * regs[in.C].AsInt())
		case dex.OpDiv:
			d := regs[in.C].AsInt()
			if d == 0 {
				return Null, fmt.Errorf("%w: division by zero in %s.%s", ErrAppCrash, cls.Name, method.Name)
			}
			regs[in.A] = IntVal(regs[in.B].AsInt() / d)
		case dex.OpXor:
			regs[in.A] = IntVal(regs[in.B].AsInt() ^ regs[in.C].AsInt())
		case dex.OpIfEq:
			if regs[in.A].Equal(regs[in.B]) {
				pc = in.Target
				continue
			}
		case dex.OpIfNe:
			if !regs[in.A].Equal(regs[in.B]) {
				pc = in.Target
				continue
			}
		case dex.OpIfLt:
			if regs[in.A].AsInt() < regs[in.B].AsInt() {
				pc = in.Target
				continue
			}
		case dex.OpIfGe:
			if regs[in.A].AsInt() >= regs[in.B].AsInt() {
				pc = in.Target
				continue
			}
		case dex.OpIfEqz:
			if !regs[in.A].Truthy() {
				pc = in.Target
				continue
			}
		case dex.OpIfNez:
			if regs[in.A].Truthy() {
				pc = in.Target
				continue
			}
		case dex.OpGoto:
			pc = in.Target
			continue
		case dex.OpReturn:
			return regs[in.A], nil
		case dex.OpReturnVoid:
			return Null, nil
		case dex.OpThrow:
			return Null, fmt.Errorf("%w: %s thrown in %s.%s", ErrAppCrash, regs[in.A].AsString(), cls.Name, method.Name)
		case dex.OpArrayGet:
			arr, idx := regs[in.B], regs[in.C].AsInt()
			if arr.Kind != KindArray || idx < 0 || idx >= int64(len(arr.Arr.Elems)) {
				return Null, fmt.Errorf("%w: array index %d out of bounds in %s.%s", ErrAppCrash, idx, cls.Name, method.Name)
			}
			regs[in.A] = arr.Arr.Elems[idx]
		case dex.OpArrayPut:
			arr, idx := regs[in.B], regs[in.C].AsInt()
			if arr.Kind != KindArray || idx < 0 || idx >= int64(len(arr.Arr.Elems)) {
				return Null, fmt.Errorf("%w: array index %d out of bounds in %s.%s", ErrAppCrash, idx, cls.Name, method.Name)
			}
			arr.Arr.Elems[idx] = regs[in.A]
		case dex.OpArrayLength:
			if regs[in.B].Kind != KindArray {
				return Null, fmt.Errorf("%w: array-length on non-array in %s.%s", ErrAppCrash, cls.Name, method.Name)
			}
			regs[in.A] = IntVal(int64(len(regs[in.B].Arr.Elems)))
		case dex.OpCheckCast:
			// No-op at runtime (type fidelity only).
		case dex.OpInstanceOf:
			v := regs[in.B]
			regs[in.A] = IntVal(0)
			if v.Kind == KindRef && m.isInstance(v.Ref.Class, in.Str) {
				regs[in.A] = IntVal(1)
			}
		default:
			if in.Op.IsInvoke() {
				// Callees copy arguments into their own registers and no
				// system handler retains the slice, so it can go back to
				// the pool as soon as the call returns.
				argsPtr := getValues(len(in.Args))
				callArgs := *argsPtr
				for i, r := range in.Args {
					callArgs[i] = regs[r]
				}
				dyn := in.Method.Class
				if in.Op != dex.OpInvokeStatic && len(callArgs) > 0 && callArgs[0].Kind == KindRef {
					dyn = callArgs[0].Ref.Class
				}
				res, err := m.invoke(dyn, in.Method, callArgs)
				putValues(argsPtr)
				if err != nil {
					return Null, err
				}
				m.lastResult = res
			} else {
				return Null, fmt.Errorf("%w: invalid opcode %d in %s.%s", ErrAppCrash, in.Op, cls.Name, method.Name)
			}
		}
		pc++
	}
	return Null, nil
}

// binOp implements add with string-concatenation semantics when either
// side is a string (the javac "+" lowering).
func (m *VM) binOp(a, b Value, op byte) Value {
	if op == '+' && (a.Kind == KindString || b.Kind == KindString) {
		return StrVal(a.AsString() + b.AsString())
	}
	return IntVal(a.AsInt() + b.AsInt())
}

func (m *VM) isInstance(class, target string) bool {
	for name := class; name != ""; {
		if name == target {
			return true
		}
		c := m.resolveClass(name)
		if c == nil {
			return false
		}
		name = c.Super
	}
	return false
}
