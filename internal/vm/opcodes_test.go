package vm

import (
	"errors"
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/dex"
)

// runMethod executes a freshly built method body and returns its result.
func runMethod(t *testing.T, build func(*dex.MethodBuilder)) (Value, error) {
	t.Helper()
	dev := android.NewDevice()
	b := dex.NewBuilder()
	cls := b.Class("com.op.T", "android.app.Activity")
	m := cls.Method("f", dex.ACCPublic, 12, "I")
	build(m)
	m.Done()
	cls.Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	app := installApp(t, dev, "com.op", dexBytes, nil, "")
	vm, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return vm.InvokeMethod("com.op.T", "f", Null)
}

func expectInt(t *testing.T, want int64, build func(*dex.MethodBuilder)) {
	t.Helper()
	v, err := runMethod(t, build)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v.AsInt() != want {
		t.Fatalf("result = %v, want %d", v, want)
	}
}

func expectCrash(t *testing.T, fragment string, build func(*dex.MethodBuilder)) {
	t.Helper()
	_, err := runMethod(t, build)
	if !errors.Is(err, ErrAppCrash) {
		t.Fatalf("err = %v, want ErrAppCrash", err)
	}
	if fragment != "" && !strings.Contains(err.Error(), fragment) {
		t.Fatalf("err = %v, want substring %q", err, fragment)
	}
}

func TestArithmeticOps(t *testing.T) {
	expectInt(t, 6, func(m *dex.MethodBuilder) {
		m.Const(1, 10).Const(2, 4).Sub(3, 1, 2).Return(3)
	})
	expectInt(t, 42, func(m *dex.MethodBuilder) {
		m.Const(1, 6).Const(2, 7).Mul(3, 1, 2).Return(3)
	})
	expectInt(t, 7, func(m *dex.MethodBuilder) {
		m.Const(1, 42).Const(2, 6).Div(3, 1, 2).Return(3)
	})
	expectInt(t, 0b0110, func(m *dex.MethodBuilder) {
		m.Const(1, 0b1100).Const(2, 0b1010).Xor(3, 1, 2).Return(3)
	})
}

func TestDivByZeroCrashes(t *testing.T) {
	expectCrash(t, "division by zero", func(m *dex.MethodBuilder) {
		m.Const(1, 5).Const(2, 0).Div(3, 1, 2).Return(3)
	})
}

func TestArrays(t *testing.T) {
	expectInt(t, 3, func(m *dex.MethodBuilder) {
		m.Const(1, 3).
			NewArray(2, 1, "I").
			ArrayLength(3, 2).
			Return(3)
	})
	expectInt(t, 17, func(m *dex.MethodBuilder) {
		m.Const(1, 4).
			NewArray(2, 1, "I").
			Const(3, 17).
			Const(4, 2).
			ArrayPut(3, 2, 4).
			ArrayGet(5, 2, 4).
			Return(5)
	})
}

func TestArrayBoundsCrash(t *testing.T) {
	expectCrash(t, "out of bounds", func(m *dex.MethodBuilder) {
		m.Const(1, 2).
			NewArray(2, 1, "I").
			Const(3, 5).
			ArrayGet(4, 2, 3).
			Return(4)
	})
}

func TestNegativeArrayLengthCrash(t *testing.T) {
	expectCrash(t, "new-array", func(m *dex.MethodBuilder) {
		m.Const(1, -1).
			NewArray(2, 1, "I").
			Const(3, 0).
			Return(3)
	})
}

func TestInstanceOfAndCheckCast(t *testing.T) {
	// InstanceOf walks the superclass chain of app classes.
	dev := android.NewDevice()
	b := dex.NewBuilder()
	b.Class("com.io.Base", "java.lang.Object")
	b.Class("com.io.Child", "com.io.Base")
	cls := b.Class("com.io.T", "android.app.Activity")
	m := cls.Method("f", dex.ACCPublic, 6, "I")
	m.NewInstance(1, "com.io.Child").
		CheckCast(1, "com.io.Base").
		InstanceOf(2, 1, "com.io.Base").
		InstanceOf(3, 1, "java.lang.Runnable").
		Const(4, 10).
		Mul(5, 2, 4).
		Add(5, 5, 3).
		Return(5) // 10*isBase + isRunnable = 10
	m.Done()
	cls.Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	app := installApp(t, dev, "com.io", dexBytes, nil, "")
	vmach, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vmach.InvokeMethod("com.io.T", "f", Null)
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 10 {
		t.Fatalf("instance-of result = %v, want 10", v)
	}
}

func TestFieldAccessOnNonObjectCrashes(t *testing.T) {
	expectCrash(t, "iget", func(m *dex.MethodBuilder) {
		m.Const(1, 5).
			IGet(2, 1, dex.FieldRef{Class: "com.op.T", Name: "x", Type: "I"}).
			Return(2)
	})
	expectCrash(t, "iput", func(m *dex.MethodBuilder) {
		m.Const(1, 5).
			IPut(1, 1, dex.FieldRef{Class: "com.op.T", Name: "x", Type: "I"}).
			Return(1)
	})
}

func TestInstanceFields(t *testing.T) {
	expectInt(t, 21, func(m *dex.MethodBuilder) {
		fld := dex.FieldRef{Class: "com.op.T", Name: "v", Type: "I"}
		m.NewInstance(1, "com.op.Box").
			Const(2, 21).
			IPut(2, 1, fld).
			IGet(3, 1, fld).
			Return(3)
	})
}

func TestStringConcatViaAdd(t *testing.T) {
	v, err := runMethod(t, func(m *dex.MethodBuilder) {
		m.ConstString(1, "/data/data/").
			ConstString(2, "com.x").
			Add(3, 1, 2).
			Return(3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsString() != "/data/data/com.x" {
		t.Fatalf("concat = %q", v.AsString())
	}
}

func TestStackOverflowCrashes(t *testing.T) {
	dev := android.NewDevice()
	b := dex.NewBuilder()
	cls := b.Class("com.so.T", "android.app.Activity")
	m := cls.Method("recurse", dex.ACCPublic, 2, "V")
	m.InvokeVirtual(dex.MethodRef{Class: "com.so.T", Name: "recurse", Sig: "()V"}, 0).
		ReturnVoid().Done()
	cls.Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, "com.so", dexBytes, nil, "")
	vmach, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = vmach.InvokeMethod("com.so.T", "recurse", Null)
	if !errors.Is(err, ErrAppCrash) || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v", err)
	}
}
