// Quickstart: generate a miniature marketplace, run the DyDroid pipeline
// on one ad-supported app, and print what the system recovered — the DCL
// event with its call site, responsible entity and provenance, plus the
// privacy behaviour of the intercepted code.
package main

import (
	"fmt"
	"log"

	"github.com/dydroid/dydroid"
)

func main() {
	// A tiny synthetic marketplace: ~60 apps with the paper's behaviours.
	store, err := dydroid.GenerateStore(dydroid.StoreConfig{Seed: 1, Scale: 0.001})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d apps\n", len(store.Apps))

	// DroidNative trained on the malware families of the training corpus.
	classifier, err := store.TrainingSet(3)
	if err != nil {
		log.Fatal(err)
	}

	analyzer := dydroid.NewAnalyzer(dydroid.Options{
		Seed:        7,
		Classifier:  classifier,
		Network:     store.Network,     // the simulated remote servers
		SetupDevice: store.SetupDevice, // companion apps (Adobe AIR, chat apps)
	})

	// Analyze the first app that embeds the Google-Ads-style SDK.
	for _, app := range store.Apps {
		if !app.Spec.AdMob {
			continue
		}
		apkBytes, err := store.BuildAPK(app)
		if err != nil {
			log.Fatal(err)
		}
		res, err := analyzer.AnalyzeAPK(apkBytes)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\napp %s: status=%s\n", res.Package, res.Status)
		for _, ev := range res.Events {
			fmt.Printf("  DCL %-6s via %s\n", ev.Kind, ev.API)
			fmt.Printf("      file:       %s\n", ev.Path)
			fmt.Printf("      call site:  %s (stack depth %d)\n", ev.CallSite, len(ev.Stack))
			fmt.Printf("      entity:     %s\n", ev.Entity)
			fmt.Printf("      provenance: %s\n", ev.Provenance)
			fmt.Printf("      intercepted: %d bytes (survived the SDK's delete)\n", len(ev.Intercepted))
		}
		if res.Privacy != nil {
			for _, dt := range res.Privacy.LeakedTypes() {
				fmt.Printf("  privacy: loaded code tracks %q (exclusively third-party: %v)\n",
					dt, res.PrivacyByEntity[string(dt)])
			}
		}
		if len(res.Malware) == 0 {
			fmt.Println("  malware: none (DroidNative found no family match)")
		}
		return
	}
	log.Fatal("no ad-supported app at this scale")
}
