// Command dydroid runs the full DyDroid pipeline on one or more APK files
// (as produced by genstore) and prints a per-app report: status, DCL
// events with entity and provenance, malware detections, vulnerabilities
// and privacy leaks.
//
// Usage:
//
//	dydroid [-seed 7] [-events 25] [-metrics] [-json] app1.apk [app2.apk ...]
//
// With -json the per-app report is one JSON record per line — the same
// record type the dydroidd vetting daemon serves from /v1/result, so a
// local run and a daemon verdict for the same APK are byte-identical.
// Malware detection trains DroidNative on the corpus's training families;
// pass -no-train to skip it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/service"
)

func main() {
	seed := flag.Int64("seed", 7, "fuzzing seed")
	events := flag.Int("events", 25, "monkey event budget per app")
	noTrain := flag.Bool("no-train", false, "skip DroidNative training (disables malware detection)")
	showMetrics := flag.Bool("metrics", false, "print the pipeline metrics snapshot (per-stage timings, status counts) to stderr after all apps")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON record per app (the dydroidd verdict format) instead of the text report")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dydroid [flags] app.apk ...")
		os.Exit(2)
	}

	// A minimal store provides the training set, the remote-payload
	// network and the companion apps the samples reference.
	store, err := corpus.Generate(corpus.Config{Seed: *seed, Scale: 0.001})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dydroid:", err)
		os.Exit(1)
	}
	var clf *droidnative.Classifier
	if !*noTrain {
		if clf, err = store.TrainingSet(3); err != nil {
			fmt.Fprintln(os.Stderr, "dydroid:", err)
			os.Exit(1)
		}
	}
	reg := metrics.New()
	an := core.NewAnalyzer(core.Options{
		Seed:         *seed,
		MonkeyEvents: *events,
		Classifier:   clf,
		Network:      store.Network,
		SetupDevice:  store.SetupDevice,
		Metrics:      reg,
	})

	exit := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dydroid:", err)
			exit = 1
			continue
		}
		res, err := an.AnalyzeAPK(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dydroid: %s: %v\n", path, err)
			exit = 1
			continue
		}
		if *jsonOut {
			if err := printJSON(os.Stdout, data, res); err != nil {
				fmt.Fprintf(os.Stderr, "dydroid: %s: %v\n", path, err)
				exit = 1
			}
			continue
		}
		printResult(os.Stdout, path, res)
	}
	if *showMetrics {
		fmt.Fprint(os.Stderr, reg.Snapshot())
	}
	os.Exit(exit)
}

// printJSON emits the daemon's record format: digest-keyed, one line per
// app, byte-identical to what dydroidd serves for the same archive.
func printJSON(w io.Writer, apkBytes []byte, res *core.AppResult) error {
	digest, err := apk.SigningDigest(apkBytes)
	if err != nil {
		return err
	}
	raw, err := service.NewRecord(digest, res, nil).Marshal()
	if err != nil {
		return err
	}
	if _, err := w.Write(raw); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

func printResult(w io.Writer, path string, res *core.AppResult) {
	fmt.Fprintf(w, "== %s (%s)\n", path, res.Package)
	fmt.Fprintf(w, "   status: %s", res.Status)
	if res.Crash != nil {
		fmt.Fprintf(w, " (%v)", res.Crash)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "   pre-filter: dex-dcl=%v native-dcl=%v\n",
		res.PreFilter.HasDexDCL, res.PreFilter.HasNativeDCL)
	o := res.Obfuscation
	fmt.Fprintf(w, "   obfuscation: lexical=%v reflection=%v native=%v dex-encryption=%v anti-decompilation=%v\n",
		o.Lexical, o.Reflection, o.Native, o.DEXEncryption, o.AntiDecompile)
	for _, ev := range res.Events {
		fmt.Fprintf(w, "   DCL %-6s %-12s path=%s\n", ev.Kind, ev.API, ev.Path)
		fmt.Fprintf(w, "       call-site=%s entity=%s provenance=%s", ev.CallSite, ev.Entity, ev.Provenance)
		if ev.SourceURL != "" {
			fmt.Fprintf(w, " url=%s", ev.SourceURL)
		}
		fmt.Fprintf(w, " intercepted=%v\n", ev.Intercepted != nil)
	}
	for _, hit := range res.Malware {
		fmt.Fprintf(w, "   MALWARE %s: %s (match %.0f%%) in %s\n", hit.Kind, hit.Family, hit.Score*100, hit.Path)
	}
	for _, v := range res.Vulns {
		fmt.Fprintf(w, "   VULNERABLE %s/%s: %s", v.Code, v.Kind, v.Path)
		if v.OwnerPackage != "" {
			fmt.Fprintf(w, " (owned by %s)", v.OwnerPackage)
		}
		fmt.Fprintln(w)
	}
	if res.Privacy != nil {
		for _, dt := range res.Privacy.LeakedTypes() {
			excl := ""
			if res.PrivacyByEntity[string(dt)] {
				excl = " (exclusively third-party)"
			}
			fmt.Fprintf(w, "   PRIVACY leak: %s%s\n", dt, excl)
		}
	}
	for _, ev := range res.RuntimeEvents {
		fmt.Fprintf(w, "   runtime event: %s %s\n", ev.Kind, ev.Detail)
	}
}
