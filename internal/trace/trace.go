// Package trace is the per-app observability layer of the pipeline:
// lightweight span trees propagated through context.Context. Every
// analysis run produces one Trace — a root span covering the whole run
// with one child span per executed pipeline stage — carrying string
// attributes (loader kind, provenance, entity, status) and timestamped
// structured events (one per DCL load). Traces serialize to one JSON
// object per line (JSONL) and live in a bounded on-disk store keyed by
// the APK signing digest, so a slow or misbehaving app stays inspectable
// long after its aggregate counters have been folded into a snapshot.
//
// The package has no dependency on the rest of the pipeline; core,
// bouncer, service and experiments all attach to it through three calls:
// Start (open a child span, creating a trace when the context has none),
// FromContext (recover the trace), and Span.End.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A is shorthand for constructing an Attr at call sites.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one timestamped structured occurrence inside a span (e.g. a
// single DCL load with its attribution).
type Event struct {
	Time  time.Time `json:"time"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one named, timed node of the trace tree. All methods are safe
// for concurrent use and no-ops on a nil receiver, so callers can thread
// optional spans without nil checks.
type Span struct {
	Name    string    `json:"name"`
	StartAt time.Time `json:"start"`
	EndAt   time.Time `json:"end"`
	// ID, when set, names the span across process boundaries: a caller
	// forwarding work to another process sends "<traceID>:<spanID>" (the
	// X-Dydroid-Parent header) so the remote tree can later be grafted
	// back under this exact span. Most spans never need one.
	ID       string  `json:"id,omitempty"`
	Err      string  `json:"err,omitempty"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Events   []Event `json:"events,omitempty"`
	Children []*Span `json:"children,omitempty"`

	mu sync.Mutex
}

// Trace is one complete span tree with its identity.
type Trace struct {
	// ID names the trace across process boundaries (the value of the
	// daemon's X-Dydroid-Trace response header).
	ID string `json:"id"`
	// Digest is the APK signing digest — the trace store key. Empty when
	// the analysis ran outside a content-addressed context.
	Digest string `json:"digest,omitempty"`
	Root   *Span  `json:"root"`
}

// Option configures New.
type Option func(*Trace)

// WithID pins the trace ID (e.g. derived from the signing digest so
// clients can compute it); the default is a random 16-hex-char ID.
func WithID(id string) Option { return func(t *Trace) { t.ID = id } }

// WithDigest records the APK signing digest the trace is keyed under.
func WithDigest(d string) Option { return func(t *Trace) { t.Digest = d } }

// New creates a trace whose root span is named name and started now.
func New(name string, opts ...Option) *Trace {
	t := &Trace{Root: &Span{Name: name, StartAt: time.Now()}}
	for _, o := range opts {
		o(t)
	}
	if t.ID == "" {
		t.ID = NewID()
	}
	return t
}

// IDFromDigest derives the deterministic trace ID of a digest-keyed
// analysis run: its leading 16 hex chars. Both the vetting daemon and the
// cluster coordinator derive their trace IDs this way, so a client (or a
// coordinator stitching a cross-node tree) can compute the ID from the
// digest alone.
func IDFromDigest(digest string) string {
	if len(digest) > 16 {
		return digest[:16]
	}
	return digest
}

// ParentRef encodes a cross-process parent reference ("<traceID>:<spanID>")
// — the X-Dydroid-Parent header value a forwarding tier sends so the
// remote process can record which span its local tree belongs under.
func ParentRef(traceID, spanID string) string { return traceID + ":" + spanID }

// Parent attribute keys recorded on a root span built from an incoming
// ParentRef (see SetParent).
const (
	AttrParentTrace = "parent.trace"
	AttrParentSpan  = "parent.span"
)

// SetParent records an incoming ParentRef on the span as parent.trace /
// parent.span attributes. Malformed or empty refs are ignored — parenting
// is best-effort observability, never a request error.
func (s *Span) SetParent(ref string) {
	if s == nil || ref == "" {
		return
	}
	i := strings.IndexByte(ref, ':')
	if i <= 0 || i == len(ref)-1 {
		return
	}
	s.SetAttr(AttrParentTrace, ref[:i])
	s.SetAttr(AttrParentSpan, ref[i+1:])
}

// Graft attaches child's root under the span of parent whose ID matches
// the child root's parent.span attribute, stitching a remote subtree back
// into the tree that forwarded it. When the child carries no usable
// reference (or no span matches), the child root is appended under
// parent's root instead, so a stitched read never loses the remote tree.
// It reports whether an exact parent match was found.
func Graft(parent, child *Trace) bool {
	if parent == nil || parent.Root == nil || child == nil || child.Root == nil {
		return false
	}
	want := child.Root.Attr(AttrParentSpan)
	var target *Span
	if want != "" {
		parent.Root.Walk(func(sp *Span) {
			if target == nil && sp.ID != "" && sp.ID == want {
				target = sp
			}
		})
	}
	matched := target != nil
	if target == nil {
		target = parent.Root
	}
	target.mu.Lock()
	target.Children = append(target.Children, child.Root)
	target.mu.Unlock()
	return matched
}

// NewID returns a random 16-hex-char trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform entropy source is gone;
		// a fixed ID keeps tracing best-effort rather than fatal.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ctxKey carries the trace and its innermost open span through a context.
type ctxKey struct{}

type ctxVal struct {
	t *Trace
	s *Span
}

// ContextWith returns ctx carrying the trace with its root as the active
// span. Callers that construct the Trace themselves (the vetting daemon,
// which derives IDs from digests) use this; everyone else uses Start.
func ContextWith(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, s: t.Root})
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.t
	}
	return nil
}

// ActiveSpan returns the innermost span carried by ctx, or nil.
func ActiveSpan(ctx context.Context) *Span {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.s
	}
	return nil
}

// Start opens a span named name as a child of the active span in ctx and
// returns the derived context plus the span. When ctx carries no trace, a
// fresh one is created with the new span as root — so a library can
// always call Start and both standalone and joined callers get a
// coherent tree. The caller must End the span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		child := v.s.child(name)
		return context.WithValue(ctx, ctxKey{}, ctxVal{t: v.t, s: child}), child
	}
	t := New(name)
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, s: t.Root}), t.Root
}

// child appends a started child span.
func (s *Span) child(name string) *Span {
	c := &Span{Name: name, StartAt: time.Now()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// StartChild opens a child span directly on s, for callers that manage a
// trace without threading a context (e.g. the coordinator's per-attempt
// routing spans). The caller must End it. Nil receivers return nil, which
// every Span method tolerates.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name)
}

// SetAttr annotates the span; setting an existing key replaces its value.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetIntAttr annotates the span with an integer value (attrs are
// strings on the wire; this is the decimal convenience used by the
// resource-attribution meter).
func (s *Span) SetIntAttr(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// IntAttr returns the named attribute parsed as a decimal integer
// (0 when absent or non-numeric).
func (s *Span) IntAttr(key string) int64 {
	v, _ := strconv.ParseInt(s.Attr(key), 10, 64)
	return v
}

// Attr returns the value of the named attribute ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// AddEvent records a timestamped structured event inside the span.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Events = append(s.Events, Event{Time: time.Now(), Name: name, Attrs: attrs})
	s.mu.Unlock()
}

// End closes the span. A second End is a no-op, so error paths can End
// eagerly while normal paths defer.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.EndAt.IsZero() {
		s.EndAt = time.Now()
	}
	s.mu.Unlock()
}

// EndErr closes the span recording err as its failure status.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if err != nil && s.Err == "" {
		s.Err = err.Error()
	}
	if s.EndAt.IsZero() {
		s.EndAt = time.Now()
	}
	s.mu.Unlock()
}

// Duration is the span's elapsed time (to now while still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.EndAt.IsZero() {
		return time.Since(s.StartAt)
	}
	return s.EndAt.Sub(s.StartAt)
}

// Walk visits the span and every descendant depth-first in child order.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	s.mu.Lock()
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range children {
		c.Walk(fn)
	}
}

// Find returns the first span named name in the subtree (depth-first),
// or nil.
func (s *Span) Find(name string) *Span {
	var found *Span
	s.Walk(func(sp *Span) {
		if found == nil && sp.Name == name {
			found = sp
		}
	})
	return found
}
