package vm

import (
	"errors"
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/netsim"
)

// recHooks records hook events and optionally blocks deletes/renames.
type recHooks struct {
	loaderInits []struct {
		kind    LoaderKind
		dexPath string
		optDir  string
		stack   []StackElement
	}
	nativeLoads []struct {
		api   NativeLoadAPI
		path  string
		stack []StackElement
	}
	blockDeletes bool
	deleted      []string
}

func (h *recHooks) OnClassLoaderInit(kind LoaderKind, dexPath, optDir string, stack []StackElement) {
	h.loaderInits = append(h.loaderInits, struct {
		kind    LoaderKind
		dexPath string
		optDir  string
		stack   []StackElement
	}{kind, dexPath, optDir, stack})
}

func (h *recHooks) OnNativeLoad(api NativeLoadAPI, path string, stack []StackElement) {
	h.nativeLoads = append(h.nativeLoads, struct {
		api   NativeLoadAPI
		path  string
		stack []StackElement
	}{api, path, stack})
}

func (h *recHooks) OnFileDelete(path string) bool {
	h.deleted = append(h.deleted, path)
	return h.blockDeletes
}

func (h *recHooks) OnFileRename(oldPath, newPath string) bool { return h.blockDeletes }

// payloadDex builds a loadable payload with class com.payload.Entry whose
// run() returns 7.
func payloadDex(t *testing.T) []byte {
	t.Helper()
	b := dex.NewBuilder()
	m := b.Class("com.payload.Entry", "java.lang.Object").
		Method("run", dex.ACCPublic, 2, "I")
	m.Const(1, 7).Return(1).Done()
	data, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// dclAppDex builds the main app bytecode: the activity's onCreate creates
// a DexClassLoader over the payload path, loads com.payload.Entry via
// reflection and invokes run().
func dclAppDex(t *testing.T, pkg, payloadPath string) []byte {
	t.Helper()
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	m := act.Method("onCreate", dex.ACCPublic, 8, "V", "Landroid/os/Bundle;")
	m.ConstString(2, payloadPath).
		ConstString(3, android.InternalDir(pkg)+"odex").
		NewInstance(4, string(LoaderDex)).
		InvokeDirect(dex.MethodRef{Class: string(LoaderDex), Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			4, 2, 3, 0, 0).
		ConstString(5, "com.payload.Entry").
		InvokeVirtual(dex.MethodRef{Class: "java.lang.ClassLoader", Name: "loadClass",
			Sig: "(Ljava/lang/String;)Ljava/lang/Class;"}, 4, 5).
		MoveResult(6).
		InvokeVirtual(dex.MethodRef{Class: "java.lang.Class", Name: "newInstance",
			Sig: "()Ljava/lang/Object;"}, 6).
		MoveResult(7).
		InvokeVirtual(dex.MethodRef{Class: "com.payload.Entry", Name: "run", Sig: "()I"}, 7).
		MoveResult(1).
		SPut(1, dex.FieldRef{Class: pkg + ".Main", Name: "result", Type: "I"}).
		ReturnVoid().
		Done()
	data, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func installApp(t *testing.T, dev *android.Device, pkg string, dexBytes []byte, libs map[string][]byte, appName string) *android.InstalledApp {
	t.Helper()
	a := &apk.APK{
		Manifest: apk.Manifest{
			Package: pkg,
			MinSDK:  16,
			Application: apk.Application{
				Name:       appName,
				Activities: []apk.Component{{Name: pkg + ".Main", Main: true}},
			},
		},
		Dex:        dexBytes,
		NativeLibs: libs,
	}
	app, err := dev.Packages.Install(a)
	if err != nil {
		t.Fatalf("install %s: %v", pkg, err)
	}
	return app
}

func TestDexClassLoaderHookAndExecution(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.test.app"
	payloadPath := android.InternalDir(pkg) + "cache/payload.dex"
	app := installApp(t, dev, pkg, dclAppDex(t, pkg, payloadPath), nil, "")
	if err := dev.Storage.WriteFile(payloadPath, payloadDex(t), pkg, false); err != nil {
		t.Fatal(err)
	}
	hooks := &recHooks{}
	m, err := New(dev, nil, app, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if len(hooks.loaderInits) != 1 {
		t.Fatalf("loader hook fired %d times, want 1", len(hooks.loaderInits))
	}
	ev := hooks.loaderInits[0]
	if ev.kind != LoaderDex || ev.dexPath != payloadPath {
		t.Fatalf("hook = %+v", ev)
	}
	// Call-site class (top stack element) must be the app's activity.
	if len(ev.stack) == 0 || ev.stack[0].Class != pkg+".Main" {
		t.Fatalf("stack = %+v, want top %s.Main", ev.stack, pkg)
	}
	// Loaded code ran: static field holds 7.
	if got := m.statics[pkg+".Main.result"]; got.AsInt() != 7 {
		t.Fatalf("payload result = %v, want 7", got)
	}
	// ODEX written into the optimized dir by dexopt.
	odexFiles := dev.Storage.List(android.InternalDir(pkg) + "odex/")
	if len(odexFiles) != 1 || !strings.HasSuffix(odexFiles[0], ".odex") {
		t.Fatalf("odex files = %v", odexFiles)
	}
}

func TestClassLoaderMissingFileCrashes(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.test.missing"
	app := installApp(t, dev, pkg, dclAppDex(t, pkg, "/data/data/"+pkg+"/cache/nope.dex"), nil, "")
	m, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); !errors.Is(err, ErrAppCrash) {
		t.Fatalf("LaunchApp err = %v, want ErrAppCrash", err)
	}
}

func TestNativeLoadLibraryHookAndJNI(t *testing.T) {
	// Native lib with a JNI method returning arg0 xor 0xff, plus JNI_OnLoad.
	nb := nativebin.NewBuilder("libmath.so", "arm")
	nb.Symbol("JNI_OnLoad").MovI(0, 1).Ret()
	nb.Symbol("Java_com_test_nat_Main_mask").
		MovI(1, 255).
		Xor(0, 0, 1).
		Ret()
	libBytes, err := nativebin.Encode(nb.Build())
	if err != nil {
		t.Fatal(err)
	}

	pkg := "com.test.nat"
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	act.NativeMethod("mask", "I", "I")
	m0 := act.Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m0.ConstString(1, "math").
		InvokeStatic(dex.MethodRef{Class: "java.lang.System", Name: "loadLibrary",
			Sig: "(Ljava/lang/String;)V"}, 1).
		Const(2, 15).
		InvokeVirtual(dex.MethodRef{Class: pkg + ".Main", Name: "mask", Sig: "(I)I"}, 0, 2).
		MoveResult(3).
		SPut(3, dex.FieldRef{Class: pkg + ".Main", Name: "masked", Type: "I"}).
		ReturnVoid().
		Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}

	dev := android.NewDevice()
	app := installApp(t, dev, pkg, dexBytes, map[string][]byte{"libmath.so": libBytes}, "")
	hooks := &recHooks{}
	m, err := New(dev, nil, app, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if len(hooks.nativeLoads) != 1 {
		t.Fatalf("native hook fired %d times, want 1", len(hooks.nativeLoads))
	}
	nl := hooks.nativeLoads[0]
	if nl.api != LoadLibrary || nl.path != android.InternalDir(pkg)+"lib/libmath.so" {
		t.Fatalf("native load = %+v", nl)
	}
	if len(nl.stack) == 0 || nl.stack[0].Class != pkg+".Main" {
		t.Fatalf("native load stack = %+v", nl.stack)
	}
	if got := m.statics[pkg+".Main.masked"]; got.AsInt() != 15^255 {
		t.Fatalf("masked = %v, want %d", got, 15^255)
	}
}

func TestLoadLibraryMissing(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.test.nolib"
	b := dex.NewBuilder()
	m0 := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;")
	m0.ConstString(1, "ghost").
		InvokeStatic(dex.MethodRef{Class: "java.lang.System", Name: "loadLibrary",
			Sig: "(Ljava/lang/String;)V"}, 1).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	m, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); !errors.Is(err, ErrAppCrash) {
		t.Fatalf("err = %v, want ErrAppCrash (UnsatisfiedLinkError)", err)
	}
}

func TestFileDeleteBlocking(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.test.del"
	path := android.InternalDir(pkg) + "cache/tmp.dex"

	b := dex.NewBuilder()
	m0 := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m0.NewInstance(1, "java.io.File").
		ConstString(2, path).
		InvokeDirect(dex.MethodRef{Class: "java.io.File", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 1, 2).
		InvokeVirtual(dex.MethodRef{Class: "java.io.File", Name: "delete", Sig: "()Z"}, 1).
		MoveResult(3).
		SPut(3, dex.FieldRef{Class: pkg + ".Main", Name: "deleted", Type: "Z"}).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	if err := dev.Storage.WriteFile(path, []byte("x"), pkg, false); err != nil {
		t.Fatal(err)
	}

	hooks := &recHooks{blockDeletes: true}
	m, err := New(dev, nil, app, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if !dev.Storage.Exists(path) {
		t.Fatal("blocked delete removed the file")
	}
	if got := m.statics[pkg+".Main.deleted"]; got.AsInt() != 0 {
		t.Fatal("blocked delete should report failure to the app")
	}
	if len(hooks.deleted) != 1 || hooks.deleted[0] != path {
		t.Fatalf("delete hook = %v", hooks.deleted)
	}
}

func TestDownloadThenLoadEmitsFlows(t *testing.T) {
	dev := android.NewDevice()
	net := netsim.NewNetwork()
	net.Online = dev.NetworkAvailable
	payload := payloadDex(t)
	const url = "http://mobads.baidu.com/ads/pa/plugin.jar"
	net.Serve(url, netsim.Payload{Data: payload})

	pkg := "com.test.remote"
	dest := android.InternalDir(pkg) + "cache/plugin.jar"
	b := dex.NewBuilder()
	m0 := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 10, "V", "Landroid/os/Bundle;")
	m0.NewInstance(1, "java.net.URL").
		ConstString(2, url).
		InvokeDirect(dex.MethodRef{Class: "java.net.URL", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 1, 2).
		InvokeVirtual(dex.MethodRef{Class: "java.net.URL", Name: "openConnection",
			Sig: "()Ljava/net/URLConnection;"}, 1).
		MoveResult(3).
		InvokeVirtual(dex.MethodRef{Class: "java.net.HttpURLConnection", Name: "getInputStream",
			Sig: "()Ljava/io/InputStream;"}, 3).
		MoveResult(4).
		NewInstance(5, "java.io.FileOutputStream").
		ConstString(6, dest).
		InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 5, 6).
		// copy loop
		Label("loop").
		Const(8, 64).
		InvokeVirtual(dex.MethodRef{Class: "java.io.InputStream", Name: "read",
			Sig: "(I)[B"}, 4, 8).
		MoveResult(7).
		IfEqz(7, "done").
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
			Sig: "([B)V"}, 5, 7).
		Goto("loop").
		Label("done").
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
			Sig: "()V"}, 5).
		// load the downloaded file
		ConstString(9, android.InternalDir(pkg)+"odex").
		NewInstance(8, string(LoaderDex)).
		InvokeDirect(dex.MethodRef{Class: string(LoaderDex), Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			8, 6, 9, 0, 0).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")

	rec := &flowRecorder{}
	hooks := &recHooks{}
	m, err := New(dev, net, app, hooks, rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	// File downloaded and loaded.
	data, err := dev.Storage.ReadFile(dest)
	if err != nil || len(data) != len(payload) {
		t.Fatalf("downloaded file: %d bytes, err %v", len(data), err)
	}
	if len(hooks.loaderInits) != 1 || hooks.loaderInits[0].dexPath != dest {
		t.Fatalf("loader hook = %+v", hooks.loaderInits)
	}
	// Flow chain URL -> ... -> File must be observable.
	if !rec.sawURL(url) {
		t.Fatal("URL init not recorded")
	}
	if !rec.sawBind(dest) {
		t.Fatalf("file bind for %s not recorded; binds = %v", dest, rec.binds)
	}
	if len(rec.flows) < 4 {
		t.Fatalf("too few flows recorded: %d", len(rec.flows))
	}
}

type flowRecorder struct {
	urls  map[netsim.ObjectID]string
	flows [][2]netsim.ObjectID
	binds map[netsim.ObjectID]string
}

func (r *flowRecorder) RecordURLInit(o netsim.ObjectID, url string) {
	if r.urls == nil {
		r.urls = map[netsim.ObjectID]string{}
	}
	r.urls[o] = url
}
func (r *flowRecorder) RecordFlow(from, to netsim.ObjectID) {
	r.flows = append(r.flows, [2]netsim.ObjectID{from, to})
}
func (r *flowRecorder) RecordFileBind(o netsim.ObjectID, path string) {
	if r.binds == nil {
		r.binds = map[netsim.ObjectID]string{}
	}
	r.binds[o] = path
}
func (r *flowRecorder) sawURL(url string) bool {
	for _, u := range r.urls {
		if u == url {
			return true
		}
	}
	return false
}
func (r *flowRecorder) sawBind(path string) bool {
	for _, p := range r.binds {
		if p == path {
			return true
		}
	}
	return false
}

func TestApplicationContainerRunsFirst(t *testing.T) {
	// The android:name Application subclass must run before the activity.
	pkg := "com.test.container"
	b := dex.NewBuilder()
	appCls := b.Class(pkg+".Shell", "android.app.Application")
	am := appCls.Method("onCreate", dex.ACCPublic, 2, "V")
	am.Const(1, 1).
		SPut(1, dex.FieldRef{Class: pkg + ".Shell", Name: "ran", Type: "Z"}).
		ReturnVoid().Done()
	act := b.Class(pkg+".Main", "android.app.Activity")
	mm := act.Method("onCreate", dex.ACCPublic, 3, "V", "Landroid/os/Bundle;")
	mm.SGet(1, dex.FieldRef{Class: pkg + ".Shell", Name: "ran", Type: "Z"}).
		SPut(1, dex.FieldRef{Class: pkg + ".Main", Name: "sawShell", Type: "Z"}).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())

	dev := android.NewDevice()
	app := installApp(t, dev, pkg, dexBytes, nil, pkg+".Shell")
	m, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatal(err)
	}
	if got := m.statics[pkg+".Main.sawShell"]; got.AsInt() != 1 {
		t.Fatal("Application container did not run before activity onCreate")
	}
}

func TestLaunchAppNoActivity(t *testing.T) {
	dev := android.NewDevice()
	a := &apk.APK{Manifest: apk.Manifest{Package: "com.test.noact", MinSDK: 16}}
	app, err := dev.Packages.Install(a)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); !errors.Is(err, ErrNoActivity) {
		t.Fatalf("err = %v, want ErrNoActivity", err)
	}
}

func TestCallbacksAndFuzzTargets(t *testing.T) {
	pkg := "com.test.cb"
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	act.Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	act.Method("onClickDownload", dex.ACCPublic, 2, "V").
		Const(1, 5).
		SPut(1, dex.FieldRef{Class: pkg + ".Main", Name: "clicked", Type: "I"}).
		ReturnVoid().Done()
	act.Method("onResume", dex.ACCPublic, 1, "V").ReturnVoid().Done()
	act.Method("helper", dex.ACCPublic, 1, "V").ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())

	dev := android.NewDevice()
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	m, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	activity, err := m.LaunchApp()
	if err != nil {
		t.Fatal(err)
	}
	cbs := m.Callbacks(activity)
	if len(cbs) != 1 || cbs[0] != "onClickDownload" {
		t.Fatalf("Callbacks = %v, want [onClickDownload]", cbs)
	}
	if err := m.FireCallback(activity, "onClickDownload"); err != nil {
		t.Fatal(err)
	}
	if got := m.statics[pkg+".Main.clicked"]; got.AsInt() != 5 {
		t.Fatal("callback did not run")
	}
	if err := m.FireCallback(activity, "missing"); !errors.Is(err, ErrAppCrash) {
		t.Fatalf("missing callback err = %v", err)
	}
}

func TestRuntimeConditionGatedBehavior(t *testing.T) {
	// App checks connectivity before acting (Table VIII pattern).
	pkg := "com.test.gated"
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	m0 := act.Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m0.NewInstance(1, "android.net.ConnectivityManager").
		InvokeVirtual(dex.MethodRef{Class: "android.net.ConnectivityManager",
			Name: "getActiveNetworkInfo", Sig: "()Landroid/net/NetworkInfo;"}, 1).
		MoveResult(2).
		IfEqz(2, "skip").
		Const(3, 1).
		SPut(3, dex.FieldRef{Class: pkg + ".Main", Name: "acted", Type: "Z"}).
		Label("skip").
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())

	for _, online := range []bool{true, false} {
		dev := android.NewDevice()
		dev.SetAirplaneMode(!online)
		if !online {
			dev.SetWiFi(false)
		}
		app := installApp(t, dev, pkg, dexBytes, nil, "")
		m, err := New(dev, nil, app, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.LaunchApp(); err != nil {
			t.Fatal(err)
		}
		acted := m.statics[pkg+".Main.acted"].AsInt() == 1
		if acted != online {
			t.Fatalf("online=%v but acted=%v", online, acted)
		}
	}
}

func TestStepBudgetStopsRunawayApp(t *testing.T) {
	pkg := "com.test.spin"
	b := dex.NewBuilder()
	m0 := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;")
	m0.Label("top").Goto("top").Done()
	dexBytes, _ := dex.Encode(b.File())
	dev := android.NewDevice()
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	m, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.StepBudget = 10_000
	if _, err := m.LaunchApp(); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestPrivacySourceAPIs(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.test.priv"
	b := dex.NewBuilder()
	m0 := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m0.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getDeviceId", Sig: "()Ljava/lang/String;"}, 1).
		MoveResult(2).
		SPut(2, dex.FieldRef{Class: pkg + ".Main", Name: "imei", Type: "Ljava/lang/String;"}).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	m, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatal(err)
	}
	if got := m.statics[pkg+".Main.imei"].AsString(); got != dev.IMEI {
		t.Fatalf("imei = %q, want %q", got, dev.IMEI)
	}
}

func TestSinkEventsRecorded(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.test.sink"
	b := dex.NewBuilder()
	m0 := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m0.NewInstance(1, "android.telephony.SmsManager").
		ConstString(2, "+100").
		ConstString(3, "hello").
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.SmsManager",
			Name: "sendTextMessage", Sig: "(Ljava/lang/String;Ljava/lang/String;)V"}, 1, 2, 3).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	m, err := New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatal(err)
	}
	evs := m.Events()
	if len(evs) != 1 || evs[0].Kind != "sms" || evs[0].Data != "hello" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestMapLibraryName(t *testing.T) {
	if got := MapLibraryName("shell"); got != "libshell.so" {
		t.Fatalf("MapLibraryName = %q", got)
	}
	if got := MapLibraryName("libshell.so"); got != "libshell.so" {
		t.Fatalf("MapLibraryName idempotence = %q", got)
	}
}

func TestValueSemantics(t *testing.T) {
	if Null.Truthy() || !IntVal(3).Truthy() || IntVal(0).Truthy() {
		t.Fatal("Truthy int/null semantics wrong")
	}
	if !StrVal("x").Truthy() || StrVal("").Truthy() {
		t.Fatal("Truthy string semantics wrong")
	}
	if !IntVal(0).Equal(Null) || !Null.Equal(IntVal(0)) {
		t.Fatal("null/0 equality for branches wrong")
	}
	if IntVal(1).Equal(Null) {
		t.Fatal("1 == null")
	}
	if StrVal("12").AsInt() != 12 || IntVal(5).AsString() != "5" {
		t.Fatal("coercions wrong")
	}
}
