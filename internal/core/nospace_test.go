package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/vm"
)

// TestIsNoSpaceUsesWrappedSentinel: every storage-exhaustion path wraps
// android.ErrNoSpace, so isNoSpace is a plain errors.Is — including
// through the VM's crash wrapping, which must preserve the inner chain.
func TestIsNoSpaceUsesWrappedSentinel(t *testing.T) {
	inner := fmt.Errorf("%w: writing 100 bytes to /x", android.ErrNoSpace)
	crash := fmt.Errorf("%w: IOException: %w", vm.ErrAppCrash, inner)
	wrapped := fmt.Errorf("core: %w", crash)
	if !isNoSpace(wrapped) {
		t.Fatalf("isNoSpace(%v) = false", wrapped)
	}
	// A same-text error outside the chain must NOT match: the string
	// fallback is gone for good.
	if isNoSpace(errors.New("android: no space left on device")) {
		t.Fatal("isNoSpace matched on message text instead of the error chain")
	}
	if isNoSpace(nil) {
		t.Fatal("isNoSpace(nil) = true")
	}
}

// TestCrashPreservesNoSpaceChain runs an app whose ad-SDK copy phase
// exhausts the storage quota mid-run: the resulting crash error must
// still satisfy errors.Is(_, android.ErrNoSpace) end to end, which the
// old %v-wrapping in the VM broke.
func TestCrashPreservesNoSpaceChain(t *testing.T) {
	payload := make([]byte, 256*1024)
	copy(payload, payloadWithLeak(t, "com.google.ads.dynamic.AdCore"))
	apkBytes := adSDKApp(t, "com.nospace.app", payload)
	// Quota admits install (APK + dex + asset) with half a payload of
	// slack, but not the SDK's asset-to-cache copy of the full payload,
	// which fails inside the VM's FileOutputStream.close and crashes the
	// app.
	quota := int64(len(apkBytes)) + int64(len(payload)) + int64(len(payload))/2
	an := NewAnalyzer(Options{Seed: 1, StorageQuota: quota})
	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCrash {
		t.Fatalf("status = %s, want %s (crash: %v)", res.Status, StatusCrash, res.Crash)
	}
	if !errors.Is(res.Crash, vm.ErrAppCrash) {
		t.Fatalf("crash not an app crash: %v", res.Crash)
	}
	if !errors.Is(res.Crash, android.ErrNoSpace) {
		t.Fatalf("crash chain lost the storage sentinel: %v", res.Crash)
	}
}
