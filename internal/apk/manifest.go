// Package apk implements the Android application package container used by
// the simulated marketplace: a zip archive holding AndroidManifest.xml,
// classes.dex (SDEX bytecode), assets, native libraries under lib/<abi>/,
// and a META-INF signing digest. It mirrors the pieces of the real format
// that DyDroid's analyses touch: the manifest (permissions, components,
// the application android:name attribute, minSdkVersion), the bytecode
// entry, the assets folder where packers hide encrypted DEX files, and the
// native library directory that JNI loadLibrary() searches.
package apk

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// Component kinds.
const (
	KindActivity = "activity"
	KindService  = "service"
	KindReceiver = "receiver"
	KindProvider = "provider"
)

// WriteExternalStorage is the permission DyDroid injects when repackaging
// apps so the dynamic analysis can log to external storage (paper §IV).
const WriteExternalStorage = "android.permission.WRITE_EXTERNAL_STORAGE"

// Manifest models AndroidManifest.xml. Attribute names drop the android:
// namespace prefix of the real format; the structure is otherwise
// faithful.
type Manifest struct {
	XMLName     xml.Name    `xml:"manifest"`
	Package     string      `xml:"package,attr"`
	VersionCode int         `xml:"versionCode,attr"`
	MinSDK      int         `xml:"minSdkVersion,attr"`
	TargetSDK   int         `xml:"targetSdkVersion,attr"`
	Permissions []UsesPerm  `xml:"uses-permission"`
	Application Application `xml:"application"`
}

// UsesPerm is one uses-permission element.
type UsesPerm struct {
	Name string `xml:"name,attr"`
}

// Application is the application element. Name is the android:name
// attribute: the Application subclass instantiated before any component —
// the hook point that DEX-encryption packers use as their container class
// (paper §III-D rule 1).
type Application struct {
	Name       string      `xml:"name,attr,omitempty"`
	Label      string      `xml:"label,attr,omitempty"`
	Activities []Component `xml:"activity"`
	Services   []Component `xml:"service"`
	Receivers  []Component `xml:"receiver"`
	Providers  []Component `xml:"provider"`
}

// Component declares one app component.
type Component struct {
	Name     string   `xml:"name,attr"`
	Exported bool     `xml:"exported,attr,omitempty"`
	Main     bool     `xml:"main,attr,omitempty"` // has the LAUNCHER intent filter
	Actions  []Action `xml:"intent-filter>action"`
}

// Action is one intent-filter action.
type Action struct {
	Name string `xml:"name,attr"`
}

// HasPermission reports whether the manifest declares the permission.
func (m *Manifest) HasPermission(perm string) bool {
	for _, p := range m.Permissions {
		if p.Name == perm {
			return true
		}
	}
	return false
}

// AddPermission appends the permission if absent and reports whether the
// manifest changed.
func (m *Manifest) AddPermission(perm string) bool {
	if m.HasPermission(perm) {
		return false
	}
	m.Permissions = append(m.Permissions, UsesPerm{Name: perm})
	return true
}

// Components returns every declared component with its kind.
func (m *Manifest) Components() []DeclaredComponent {
	var out []DeclaredComponent
	for _, c := range m.Application.Activities {
		out = append(out, DeclaredComponent{Kind: KindActivity, Component: c})
	}
	for _, c := range m.Application.Services {
		out = append(out, DeclaredComponent{Kind: KindService, Component: c})
	}
	for _, c := range m.Application.Receivers {
		out = append(out, DeclaredComponent{Kind: KindReceiver, Component: c})
	}
	for _, c := range m.Application.Providers {
		out = append(out, DeclaredComponent{Kind: KindProvider, Component: c})
	}
	return out
}

// DeclaredComponent pairs a component with its manifest element kind.
type DeclaredComponent struct {
	Kind string
	Component
}

// LaunchActivity returns the name of the main (launcher) activity, or ""
// when the app has none — the condition behind the "No activity" row of
// Table II.
func (m *Manifest) LaunchActivity() string {
	for _, a := range m.Application.Activities {
		if a.Main {
			return a.Name
		}
	}
	if len(m.Application.Activities) > 0 {
		return m.Application.Activities[0].Name
	}
	return ""
}

// MarshalXMLBytes renders the manifest document.
func (m *Manifest) MarshalXMLBytes() ([]byte, error) {
	data, err := xml.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("apk: marshal manifest: %w", err)
	}
	return append([]byte(xml.Header), data...), nil
}

// ParseManifest parses an AndroidManifest.xml document.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := xml.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("apk: parse manifest: %w", err)
	}
	if m.Package == "" {
		return nil, fmt.Errorf("apk: manifest has no package attribute")
	}
	return &m, nil
}

// Validate performs structural checks on the manifest.
func (m *Manifest) Validate() error {
	if m.Package == "" {
		return fmt.Errorf("apk: empty package name")
	}
	if strings.ContainsAny(m.Package, " /\\") {
		return fmt.Errorf("apk: invalid package name %q", m.Package)
	}
	for _, c := range m.Components() {
		if c.Name == "" {
			return fmt.Errorf("apk: %s: component with empty name", m.Package)
		}
	}
	return nil
}
