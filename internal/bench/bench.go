// Package bench is the recorded-trajectory benchmark harness for the
// measurement pipeline. It runs a fixed-seed corpus through
// experiments.Run, collects throughput (apps/sec, apps/sec-per-core),
// allocation pressure (allocs and bytes per app) and exact per-stage
// latency percentiles, and serializes everything as a schema-versioned
// JSON document (BENCH_<n>.json at the repo root). Committed trajectory
// files plus the Diff comparator give the repo a recorded performance
// history: CI reruns the harness at smoke scale, warns on drift beyond
// the Diff threshold, and fails outright when FoldGate sees a headline
// metric collapse by 2x or more against the committed baseline.
//
// Record the next committed trajectory point (auto-numbered, diffed
// against the previous one) with:
//
//	go run ./cmd/bench run
//
// and compare two trajectories with:
//
//	go run ./cmd/bench diff BENCH_6.json BENCH_7.json
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"

	"github.com/dydroid/dydroid/internal/experiments"
	"github.com/dydroid/dydroid/internal/stats"
)

// SchemaVersion identifies the Result JSON layout. Bump it when a field
// is renamed, removed, or changes meaning; adding fields is
// backward-compatible and does not require a bump.
const SchemaVersion = 1

// DefaultRegressionPct is the comparator threshold used when the caller
// does not supply one: a metric moving more than this percentage in the
// unfavourable direction is flagged.
const DefaultRegressionPct = 15.0

// Config controls one harness run.
type Config struct {
	// Name labels the run (e.g. "trajectory" or "ci-smoke").
	Name string
	// Seed drives corpus generation; fixed seeds make the non-timing
	// portion of the Result reproducible.
	Seed int64
	// Scale shrinks the marketplace exactly as experiments.Config.Scale
	// does (1.0 = the paper's 58,739 apps).
	Scale float64
	// Workers is the pipeline parallelism (default GOMAXPROCS).
	Workers int
	// Stream selects the streaming corpus path (experiments.Config.Stream).
	// The streamed and materialized runs are result-equivalent, so
	// trajectory points taken either way share a fingerprint; the timing
	// sections measure the path that was actually run.
	Stream bool
}

// Result is one recorded benchmark trajectory point. All durations are
// serialized as explicit *_ns integer fields so the JSON schema is
// stable across Go versions and does not depend on time.Duration's
// encoding.
type Result struct {
	Schema  int     `json:"schema"`
	Name    string  `json:"name"`
	Seed    int64   `json:"seed"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`
	Cores   int     `json:"cores"`

	// Apps and Statuses describe the measured corpus: deterministic for
	// a fixed seed and scale.
	Apps     int            `json:"apps"`
	Statuses map[string]int `json:"statuses"`

	// Timing section.
	ElapsedNS         int64   `json:"elapsed_ns"`
	AppsPerSec        float64 `json:"apps_per_sec"`
	AppsPerSecPerCore float64 `json:"apps_per_sec_per_core"`
	AllocsPerApp      int64   `json:"allocs_per_app"`
	AllocBytesPerApp  int64   `json:"alloc_bytes_per_app"`

	// Stages are the exact per-stage latency percentiles from the run's
	// span trees, sorted by name.
	Stages []StageResult `json:"stages"`
}

// StageResult is one pipeline stage's latency summary.
type StageResult struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	P50NS int64  `json:"p50_ns"`
	P95NS int64  `json:"p95_ns"`
	P99NS int64  `json:"p99_ns"`
}

// Fingerprint is the deterministic (non-timing) portion of a Result:
// two runs with the same seed, scale and schema must produce equal
// fingerprints regardless of machine speed or worker count scheduling.
type Fingerprint struct {
	Schema   int
	Seed     int64
	Scale    float64
	Apps     int
	Statuses map[string]int
	// StageCounts maps stage name to span count; which spans exist (and
	// how many) depends only on the corpus, not on timing.
	StageCounts map[string]int
}

// Fingerprint extracts the deterministic portion of the result.
func (r *Result) Fingerprint() Fingerprint {
	fp := Fingerprint{
		Schema:      r.Schema,
		Seed:        r.Seed,
		Scale:       r.Scale,
		Apps:        r.Apps,
		Statuses:    make(map[string]int, len(r.Statuses)),
		StageCounts: make(map[string]int, len(r.Stages)),
	}
	for k, v := range r.Statuses {
		fp.Statuses[k] = v
	}
	for _, s := range r.Stages {
		fp.StageCounts[s.Name] = s.Count
	}
	return fp
}

// Run executes the harness: one experiments.Run under the given config,
// with allocation deltas sampled around it.
func Run(cfg Config) (*Result, error) {
	if cfg.Name == "" {
		cfg.Name = "bench"
	}
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("bench: scale must be positive, got %v", cfg.Scale)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := experiments.Run(experiments.Config{
		Seed:    cfg.Seed,
		Scale:   cfg.Scale,
		Workers: workers,
		Stream:  cfg.Stream,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	runtime.ReadMemStats(&after)

	cores := runtime.GOMAXPROCS(0)
	out := &Result{
		Schema:     SchemaVersion,
		Name:       cfg.Name,
		Seed:       cfg.Seed,
		Scale:      cfg.Scale,
		Workers:    workers,
		Cores:      cores,
		Apps:       res.RunStats.Apps,
		Statuses:   make(map[string]int, len(res.RunStats.StatusCounts)),
		ElapsedNS:  res.RunStats.Elapsed.Nanoseconds(),
		AppsPerSec: res.RunStats.AppsPerSec,
	}
	if cores > 0 {
		out.AppsPerSecPerCore = res.RunStats.AppsPerSec / float64(cores)
	}
	if apps := int64(res.RunStats.Apps); apps > 0 {
		out.AllocsPerApp = int64(after.Mallocs-before.Mallocs) / apps
		out.AllocBytesPerApp = int64(after.TotalAlloc-before.TotalAlloc) / apps
	}
	for st, n := range res.RunStats.StatusCounts {
		out.Statuses[string(st)] = n
	}
	for name, q := range res.RunStats.StageQuantiles {
		out.Stages = append(out.Stages, StageResult{
			Name:  name,
			Count: q.Count,
			P50NS: q.P50.Nanoseconds(),
			P95NS: q.P95.Nanoseconds(),
			P99NS: q.P99.Nanoseconds(),
		})
	}
	sort.Slice(out.Stages, func(i, j int) bool { return out.Stages[i].Name < out.Stages[j].Name })
	return out, nil
}

// Table renders the result as an aligned human-readable report.
func (r *Result) Table() string {
	t := stats.NewTable(
		fmt.Sprintf("bench %s (schema %d): seed=%d scale=%v workers=%d cores=%d",
			r.Name, r.Schema, r.Seed, r.Scale, r.Workers, r.Cores),
		"metric", "value")
	t.Row("apps", r.Apps)
	t.Row("elapsed", time.Duration(r.ElapsedNS).Round(time.Millisecond).String())
	t.Row("apps/sec", r.AppsPerSec)
	t.Row("apps/sec/core", r.AppsPerSecPerCore)
	t.Row("allocs/app", int(r.AllocsPerApp))
	t.Row("alloc bytes/app", int(r.AllocBytesPerApp))
	out := t.String()

	if len(r.Stages) > 0 {
		st := stats.NewTable("stage latency (exact quantiles)", "stage", "count", "p50", "p95", "p99")
		for _, s := range r.Stages {
			st.Row(s.Name, s.Count,
				time.Duration(s.P50NS).Round(time.Microsecond).String(),
				time.Duration(s.P95NS).Round(time.Microsecond).String(),
				time.Duration(s.P99NS).Round(time.Microsecond).String())
		}
		out += "\n" + st.String()
	}
	return out
}

// Regression is one metric that moved beyond the threshold in the
// unfavourable direction between two trajectory points.
type Regression struct {
	// Metric names the value, e.g. "apps_per_sec" or "stage.dynamic.p95".
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// DeltaPct is the signed percent change from Old to New.
	DeltaPct float64 `json:"delta_pct"`
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: %.4g -> %.4g (%+.1f%%)", g.Metric, g.Old, g.New, g.DeltaPct)
}

// Diff compares two trajectory points and returns every metric that
// regressed by more than thresholdPct percent (pass <= 0 for
// DefaultRegressionPct). Direction matters: throughput metrics regress
// when they fall, latency and allocation metrics regress when they
// rise. Stages present in only one result are skipped — the comparator
// flags movement, not corpus shape changes (Fingerprint covers those).
func Diff(base, head *Result, thresholdPct float64) []Regression {
	if thresholdPct <= 0 {
		thresholdPct = DefaultRegressionPct
	}
	var out []Regression
	// lowerIsBetter=false: regression when the metric falls.
	check := func(metric string, oldV, newV float64, lowerIsBetter bool) {
		if oldV == 0 {
			return // no baseline to compare against
		}
		delta := (newV - oldV) / oldV * 100
		bad := delta > thresholdPct
		if !lowerIsBetter {
			bad = delta < -thresholdPct
		}
		if bad {
			out = append(out, Regression{Metric: metric, Old: oldV, New: newV, DeltaPct: delta})
		}
	}
	check("apps_per_sec", base.AppsPerSec, head.AppsPerSec, false)
	check("apps_per_sec_per_core", base.AppsPerSecPerCore, head.AppsPerSecPerCore, false)
	check("allocs_per_app", float64(base.AllocsPerApp), float64(head.AllocsPerApp), true)
	check("alloc_bytes_per_app", float64(base.AllocBytesPerApp), float64(head.AllocBytesPerApp), true)

	oldStages := make(map[string]StageResult, len(base.Stages))
	for _, s := range base.Stages {
		oldStages[s.Name] = s
	}
	for _, s := range head.Stages {
		o, ok := oldStages[s.Name]
		if !ok {
			continue
		}
		check("stage."+s.Name+".p50", float64(o.P50NS), float64(s.P50NS), true)
		check("stage."+s.Name+".p95", float64(o.P95NS), float64(s.P95NS), true)
		check("stage."+s.Name+".p99", float64(o.P99NS), float64(s.P99NS), true)
	}
	return out
}

// headlineMetrics are the summary metrics FoldGate and Compare report
// on, with their improvement direction.
var headlineMetrics = []struct {
	name          string
	lowerIsBetter bool
	get           func(*Result) float64
}{
	{"apps_per_sec", false, func(r *Result) float64 { return r.AppsPerSec }},
	{"apps_per_sec_per_core", false, func(r *Result) float64 { return r.AppsPerSecPerCore }},
	{"allocs_per_app", true, func(r *Result) float64 { return float64(r.AllocsPerApp) }},
	{"alloc_bytes_per_app", true, func(r *Result) float64 { return float64(r.AllocBytesPerApp) }},
}

// Compare renders the headline-metric deltas between two trajectory
// points as an aligned table (informational; Diff and FoldGate decide
// what counts as a regression).
func Compare(base, head *Result) string {
	t := stats.NewTable(
		fmt.Sprintf("bench delta: %s -> %s", base.Name, head.Name),
		"metric", "old", "new", "delta")
	for _, m := range headlineMetrics {
		oldV, newV := m.get(base), m.get(head)
		delta := "n/a"
		if oldV != 0 {
			delta = fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
		}
		t.Row(m.name, fmt.Sprintf("%.4g", oldV), fmt.Sprintf("%.4g", newV), delta)
	}
	return t.String()
}

// FoldGate flags headline metrics that regressed by at least fold times
// between two points: throughput fails when it drops below base/fold,
// allocation pressure when it rises above base*fold. A percent
// threshold cannot express "2x worse" symmetrically (throughput halves
// at -50%, allocations double at +100%), so the blocking CI gate is
// fold-based and restricted to the headline metrics; sub-fold drift is
// Diff's warn-only territory. fold <= 1 means every unfavourable move
// fails; the conventional CI value is 2.
func FoldGate(base, head *Result, fold float64) []Regression {
	if fold < 1 {
		fold = 1
	}
	var out []Regression
	for _, m := range headlineMetrics {
		oldV, newV := m.get(base), m.get(head)
		if oldV == 0 {
			continue // no baseline to compare against
		}
		bad := m.lowerIsBetter && newV >= oldV*fold ||
			!m.lowerIsBetter && newV <= oldV/fold
		if bad {
			out = append(out, Regression{
				Metric: m.name, Old: oldV, New: newV,
				DeltaPct: (newV - oldV) / oldV * 100,
			})
		}
	}
	return out
}

// trajectoryRE matches committed trajectory file names.
var trajectoryRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextTrajectory scans dir for committed BENCH_<n>.json points and
// returns the path of the next point to record plus the path of the
// latest existing one (empty when the trajectory is empty).
func NextTrajectory(dir string) (next, prev string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", fmt.Errorf("bench: %w", err)
	}
	maxN := -1
	for _, e := range entries {
		m := trajectoryRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= maxN {
			continue
		}
		maxN = n
		prev = filepath.Join(dir, e.Name())
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", maxN+1)), prev, nil
}

// WriteFile serializes the result as indented JSON with a trailing
// newline (diff-friendly for a committed artifact).
func (r *Result) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a trajectory point, rejecting unknown schema versions
// so the comparator never silently misreads an old layout.
func ReadFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema > SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema %d, newer than supported %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}
