package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// nodeHealth is the slice of a worker's /v1/healthz body the coordinator
// acts on.
type nodeHealth struct {
	Status     string `json:"status"`
	QueueLen   int    `json:"queue_len"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int    `json:"inflight"`
	// Degraded is the worker's own queue-saturation signal (≥80% full):
	// the prober deprioritizes a degraded node for new scans before it
	// starts answering 429.
	Degraded bool `json:"degraded"`
}

// probeLoop drives the membership lifecycle: every ProbeInterval each
// member is probed at /v1/healthz; K consecutive failures eject it from
// the ring, a success on an ejected member rejoins it.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll probes every member once. Network I/O happens outside the
// membership lock; state transitions inside it.
func (c *Coordinator) probeAll() {
	c.mu.Lock()
	list := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		list = append(list, m)
	}
	c.mu.Unlock()
	for _, m := range list {
		h, err := c.probeOne(m.baseURL)
		var ver int
		if err == nil {
			c.mu.Lock()
			known := m.snapshotVersion
			c.mu.Unlock()
			if known == 0 {
				// First contact (or first since recovery — version resets on
				// eject): record the node's snapshot format for the status view.
				ver, _ = c.fetchSnapshotVersion(m.baseURL)
			}
		}
		c.mu.Lock()
		if err != nil {
			m.fails++
			m.lastErr = err.Error()
			if m.inRing && m.fails >= c.cfg.ProbeFailures {
				c.ejectLocked(m, "probe failures")
			}
			c.mu.Unlock()
			c.reg.Add("cluster.probe.failures", 1)
			continue
		}
		m.fails = 0
		m.lastErr = ""
		m.degraded = h.Degraded
		m.draining = h.Status == "draining"
		m.queueLen = h.QueueLen
		m.queueDepth = h.QueueDepth
		m.inflight = h.Inflight
		if ver != 0 {
			m.snapshotVersion = ver
		}
		if !m.inRing {
			c.rejoinLocked(m)
		}
		c.mu.Unlock()
		c.reg.Add("cluster.probe.ok", 1)
	}
}

// probeOne performs one bounded health probe.
func (c *Coordinator) probeOne(base string) (nodeHealth, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/healthz", nil)
	if err != nil {
		return nodeHealth{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nodeHealth{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nodeHealth{}, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var h nodeHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nodeHealth{}, fmt.Errorf("healthz: %w", err)
	}
	return h, nil
}

// fetchSnapshotVersion reads the node's fleet-snapshot format version
// from /v1/version (0 when unavailable).
func (c *Coordinator) fetchSnapshotVersion(base string) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/version", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("version: status %d", resp.StatusCode)
	}
	var v struct {
		SnapshotVersion int `json:"snapshot_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return 0, err
	}
	return v.SnapshotVersion, nil
}
