package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/stats"
	"github.com/dydroid/dydroid/internal/telemetry"
)

// FleetResponse is the coordinator's federated GET /v1/fleet body: the
// telemetry.Merge of every reachable node's snapshot, with partial
// coverage made explicit. A node that cannot be fetched mid-merge never
// fails the request and never hides — it is counted and named in
// NodesMissing/Missing so a report over survivors is distinguishable
// from a full-fleet report.
type FleetResponse struct {
	// Nodes is the configured member count (ring membership does not
	// matter here: an ejected node that still answers contributes).
	Nodes int `json:"nodes"`
	// NodesMissing counts members whose snapshot could not be fetched or
	// merged.
	NodesMissing int `json:"nodes_missing"`
	// Missing names them.
	Missing []string `json:"missing,omitempty"`
	// Snapshot is the merged fleet aggregate of the responding nodes.
	// Its Shards field counts the contributing nodes.
	Snapshot *telemetry.Snapshot `json:"snapshot"`
}

// handleFleet federates the fleet telemetry: every configured node's
// /v1/fleet snapshot is fetched concurrently and folded with
// telemetry.Merge — the same associative merge the shard property tests
// prove byte-stable, so a cluster-wide MeasurementReport reproduces the
// single-node report of the same corpus.
func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	list := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		list = append(list, m)
	}
	c.mu.Unlock()

	type fetched struct {
		name string
		snap *telemetry.Snapshot
		err  error
	}
	results := make([]fetched, len(list))
	var wg sync.WaitGroup
	for i, m := range list {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			snap, err := c.fetchSnapshot(r.Context(), m.baseURL)
			results[i] = fetched{name: m.name, snap: snap, err: err}
		}(i, m)
	}
	wg.Wait()

	merged := telemetry.NewSnapshot(0, 0, 0)
	merged.Shards = 0
	var missing []string
	for _, f := range results {
		if f.err == nil {
			f.err = telemetry.Merge(merged, f.snap)
		}
		if f.err != nil {
			missing = append(missing, f.name)
			c.reg.Add("cluster.fleet.missing", 1)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		c.reg.Add("cluster.fleet.partial", 1)
	}
	// The coordinator's own lifecycle events (ejections, failovers) join
	// the members' journals in the federated timeline.
	merged.Events.Merge(c.cfg.Journal.Log())
	writeJSON(w, http.StatusOK, FleetResponse{
		Nodes:        len(list),
		NodesMissing: len(missing),
		Missing:      missing,
		Snapshot:     merged,
	})
}

// fetchSnapshot pulls one node's fleet snapshot.
func (c *Coordinator) fetchSnapshot(ctx context.Context, base string) (*telemetry.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/fleet", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: status %d", resp.StatusCode)
	}
	snap := new(telemetry.Snapshot)
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(snap); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return snap, nil
}

// handleEvents federates the ops timeline: every member's /v1/events
// JSONL is fetched concurrently and merged with the coordinator's own
// journal into one bounded newest-first log, served back as JSONL. The
// merge dedups identical entries, so refetching a member (or a member
// appearing in several coordinators' views) never duplicates history.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	list := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		list = append(list, m)
	}
	c.mu.Unlock()

	logs := make([]events.Log, len(list))
	var wg sync.WaitGroup
	for i, m := range list {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			evs, err := c.fetchEvents(r.Context(), m.baseURL)
			if err != nil {
				return // a dead node contributes nothing; its ejection is in our own journal
			}
			logs[i] = events.Log{K: events.DefaultCap, Entries: evs}
		}(i, m)
	}
	wg.Wait()

	merged := c.cfg.Journal.Log()
	for _, l := range logs {
		merged.Merge(l)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	events.EncodeJSONL(w, merged.Entries)
}

// fetchEvents pulls one node's journal.
func (c *Coordinator) fetchEvents(ctx context.Context, base string) ([]events.Event, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("events: status %d", resp.StatusCode)
	}
	return events.DecodeJSONL(io.LimitReader(resp.Body, 8<<20))
}

// NodeStatus is one worker's row in the cluster status view.
type NodeStatus struct {
	Node    string `json:"node"`
	Healthy bool   `json:"healthy"`
	// Degraded mirrors the node's own queue-saturation healthz signal.
	Degraded bool `json:"degraded,omitempty"`
	Draining bool `json:"draining,omitempty"`
	// Failures is the current consecutive probe/forward failure streak.
	Failures  int    `json:"consecutive_failures,omitempty"`
	LastError string `json:"last_error,omitempty"`
	QueueLen  int    `json:"queue_len"`
	QueueDepth int   `json:"queue_depth"`
	Inflight  int    `json:"inflight"`
	// RingShare is the node's fraction of the hash space (0 while
	// ejected).
	RingShare float64 `json:"ring_share"`
	// SnapshotVersion is the fleet-snapshot format the node reported (0
	// until first contact).
	SnapshotVersion int   `json:"snapshot_version"`
	Ejections       int64 `json:"ejections,omitempty"`
}

// StatusResponse is the GET /v1/cluster/status body.
type StatusResponse struct {
	Nodes     int          `json:"nodes"`
	NodesLive int          `json:"nodes_live"`
	Members   []NodeStatus `json:"members"`
}

// handleStatus serves the coordinator's membership view: per-node
// health, saturation, ring ownership share and snapshot version — the
// body `apkinspect cluster status` renders.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// Status assembles the current membership view.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	shares := c.ring.Shares()
	st := StatusResponse{Nodes: len(c.members), NodesLive: c.ring.Len()}
	for _, m := range c.members {
		st.Members = append(st.Members, NodeStatus{
			Node:            m.name,
			Healthy:         m.inRing,
			Degraded:        m.degraded,
			Draining:        m.draining,
			Failures:        m.fails,
			LastError:       m.lastErr,
			QueueLen:        m.queueLen,
			QueueDepth:      m.queueDepth,
			Inflight:        m.inflight,
			RingShare:       shares[m.name],
			SnapshotVersion: m.snapshotVersion,
			Ejections:       m.ejections,
		})
	}
	sort.Slice(st.Members, func(i, j int) bool { return st.Members[i].Node < st.Members[j].Node })
	return st
}

// RenderStatus writes the status view as an aligned table — shared by
// `apkinspect cluster status` and the CI artifact of the multi-process
// equivalence test.
func RenderStatus(w io.Writer, st StatusResponse) {
	fmt.Fprintf(w, "cluster: %d/%d nodes live\n\n", st.NodesLive, st.Nodes)
	t := stats.NewTable("Cluster nodes", "node", "health", "share", "queue", "inflight", "snapver", "fails", "last error")
	for _, m := range st.Members {
		health := "ok"
		switch {
		case !m.Healthy:
			health = "down"
		case m.Draining:
			health = "draining"
		case m.Degraded:
			health = "degraded"
		}
		lastErr := m.LastError
		if lastErr == "" {
			lastErr = "-"
		}
		t.Row(m.Node, health,
			fmt.Sprintf("%.1f%%", m.RingShare*100),
			fmt.Sprintf("%d/%d", m.QueueLen, m.QueueDepth),
			m.Inflight, m.SnapshotVersion, m.Failures, lastErr)
	}
	io.WriteString(w, t.String())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
