package metrics

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"
)

// WritePrometheus renders every counter, gauge and histogram in the Prometheus
// text exposition format (version 0.0.4), the `/v1/metricz?format=prom`
// body of the vetting daemon. Metric names are prefixed "dydroid_" and
// sanitized (runs of non-alphanumerics collapse to '_'); histograms
// render cumulative le buckets in seconds plus _sum and _count, matching
// the registry's exponential microsecond bucketing.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]*int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		pn := promName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		fmt.Fprintf(w, "%s %d\n", pn, atomic.LoadInt64(counters[name]))
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(w, "%s %d\n", pn, atomic.LoadInt64(gauges[name]))
	}
	for _, name := range sortedKeys(hists) {
		pn := promName(name) + "_seconds"
		buckets, count, total := hists[name].snapshotBuckets()
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum int64
		// Trailing empty buckets collapse into +Inf to keep the
		// exposition compact; cumulative counts stay exact.
		last := len(buckets) - 1
		for last > 0 && buckets[last] == 0 {
			last--
		}
		for i := 0; i <= last; i++ {
			cum += buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, bucketBound(i).Seconds(), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, count)
		fmt.Fprintf(w, "%s_sum %g\n", pn, total.Seconds())
		fmt.Fprintf(w, "%s_count %d\n", pn, count)
	}
}

// snapshotBuckets copies out the raw distribution for exposition.
func (h *histogram) snapshotBuckets() (buckets [numBuckets]int64, count int64, total time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buckets, h.count, h.total
}

// promName maps a registry name like "stage.unpack" or
// "status.no-dcl" to a Prometheus-safe "dydroid_stage_unpack" /
// "dydroid_status_no_dcl".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dydroid_")
	lastUnderscore := false
	for _, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		switch {
		case ok:
			b.WriteRune(c)
			lastUnderscore = c == '_'
		case !lastUnderscore:
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	return strings.TrimRight(b.String(), "_")
}
