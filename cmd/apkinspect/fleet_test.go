package main

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/telemetry"
)

func writeShard(t *testing.T, path string, pkgs ...string) {
	t.Helper()
	a := telemetry.New(telemetry.Options{})
	for _, pkg := range pkgs {
		a.ObserveApp(&core.AppResult{
			Package: pkg,
			Status:  core.StatusExercised,
			Events: []*core.DCLEvent{{
				Kind: core.KindDex, API: "DexClassLoader", Path: "/data/x.dex",
				CallSite: pkg + ".Main", Entity: core.EntityOwn,
				Provenance: core.ProvenanceLocal,
			}},
		}, nil)
	}
	if err := a.Snapshot().WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestFleetMerge(t *testing.T) {
	dir := t.TempDir()
	s1 := filepath.Join(dir, "shard1.json")
	s2 := filepath.Join(dir, "shard2.json")
	writeShard(t, s1, "com.a.one", "com.a.two")
	writeShard(t, s2, "com.b.three")

	var b strings.Builder
	out := filepath.Join(dir, "merged.json")
	if err := runFleet(&b, []string{"merge", "-o", out, s1, s2}); err != nil {
		t.Fatalf("fleet merge: %v", err)
	}
	report := b.String()
	for _, want := range []string{
		"fleet: 3 apps across 2 shard(s)",
		"DCL prevalence",
		"DexClassLoader",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}

	merged, err := telemetry.ReadSnapshot(out)
	if err != nil {
		t.Fatalf("merged snapshot: %v", err)
	}
	if merged.Apps != 3 || merged.Shards != 2 {
		t.Fatalf("merged apps=%d shards=%d", merged.Apps, merged.Shards)
	}
	if merged.Counters["dcl.api.DexClassLoader"] != 3 {
		t.Fatalf("merged counters = %v", merged.Counters)
	}
}

func TestFleetMergeUsage(t *testing.T) {
	var b strings.Builder
	if err := runFleet(&b, nil); err == nil {
		t.Fatal("bare fleet subcommand accepted")
	}
	if err := runFleet(&b, []string{"merge"}); err == nil {
		t.Fatal("merge with no inputs accepted")
	}
}
