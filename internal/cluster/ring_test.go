package cluster

import (
	"fmt"
	"math"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("digest-%04d", i)
	}
	return keys
}

// TestRingDeterministicPlacement: the same member set owns the same keys
// regardless of join order.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing(0)
	for _, n := range []string{"node-a", "node-b", "node-c"} {
		a.Add(n)
	}
	b := NewRing(0)
	for _, n := range []string{"node-c", "node-a", "node-b"} {
		b.Add(n)
	}
	for _, k := range ringKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %s vs %s under different join orders", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance: with virtual nodes every member owns a non-trivial,
// non-dominant slice of both the hash space and a sampled key set.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"node-a", "node-b", "node-c"}
	for _, n := range nodes {
		r.Add(n)
	}
	shares := r.Shares()
	var total float64
	for _, n := range nodes {
		if shares[n] < 0.10 || shares[n] > 0.60 {
			t.Fatalf("node %s hash-space share = %.3f, want within [0.10, 0.60]", n, shares[n])
		}
		total += shares[n]
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %.9f, want 1", total)
	}
	counts := map[string]int{}
	keys := ringKeys(9000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, n := range nodes {
		frac := float64(counts[n]) / float64(len(keys))
		if frac < 0.10 || frac > 0.60 {
			t.Fatalf("node %s sampled ownership = %.3f, want within [0.10, 0.60]", n, frac)
		}
	}
}

// TestRingMinimalDisruption is the consistent-hashing property: removing
// a member moves only the keys it owned; every other key keeps its owner.
// Re-adding it restores the original placement exactly.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"node-a", "node-b", "node-c"} {
		r.Add(n)
	}
	keys := ringKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("node-c")
	if r.Has("node-c") || r.Len() != 2 {
		t.Fatalf("remove failed: has=%v len=%d", r.Has("node-c"), r.Len())
	}
	moved := 0
	for _, k := range keys {
		now := r.Owner(k)
		if before[k] != "node-c" {
			if now != before[k] {
				t.Fatalf("key %s moved %s -> %s though its owner survived", k, before[k], now)
			}
		} else {
			moved++
			if now == "node-c" {
				t.Fatalf("key %s still owned by removed node", k)
			}
		}
	}
	if moved == 0 {
		t.Fatal("node-c owned no sampled keys; balance test should have caught this")
	}
	r.Add("node-c")
	for _, k := range keys {
		if r.Owner(k) != before[k] {
			t.Fatalf("key %s did not return to %s after rejoin", k, before[k])
		}
	}
}

// TestRingSuccessors: the failover chain starts at the owner, lists
// distinct members, and is capped by the member count.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"node-a", "node-b", "node-c"} {
		r.Add(n)
	}
	for _, k := range ringKeys(100) {
		succ := r.Successors(k, 5)
		if len(succ) != 3 {
			t.Fatalf("key %s: %d successors, want 3", k, len(succ))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("key %s: chain starts at %s, owner is %s", k, succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("key %s: duplicate successor %s", k, n)
			}
			seen[n] = true
		}
	}
	if got := NewRing(0).Successors("x", 3); got != nil {
		t.Fatalf("empty ring successors = %v", got)
	}
	if got := r.Owner(""); got == "" {
		t.Fatal("empty key must still resolve to an owner")
	}
}
