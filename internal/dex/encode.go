package dex

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Binary format constants.
const (
	// Magic is the 4-byte magic of a plain SDEX file.
	Magic = "SDEX"
	// MagicODEX is the magic of an optimized SDEX file (see Optimize).
	MagicODEX = "SODX"
	// FormatVersion is the single supported format version.
	FormatVersion = 1
)

// maxSaneCount bounds decoded counts so corrupted inputs fail fast instead
// of attempting enormous allocations.
const maxSaneCount = 1 << 24

// Encode serializes the file into the SDEX binary format. The encoding is
// deterministic: equal Files produce identical bytes. A CRC32 of the body
// is appended so tampering and truncation are detectable.
func Encode(f *File) ([]byte, error) {
	return encode(f, Magic)
}

func encode(f *File, magic string) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("dex: encode: %w", err)
	}
	pool := newStringPool()
	poolFile(pool, f)

	var body bytes.Buffer
	w := &writer{buf: &body}
	// String pool section.
	w.uvarint(uint64(len(pool.list)))
	for _, s := range pool.list {
		w.str(s)
	}
	// Class section.
	w.uvarint(uint64(len(f.Classes)))
	for _, c := range f.Classes {
		w.uvarint(uint64(pool.id(c.Name)))
		w.uvarint(uint64(pool.id(c.Super)))
		w.uvarint(uint64(c.Flags))
		w.uvarint(uint64(pool.id(c.SourceFile)))
		w.uvarint(uint64(len(c.Interfaces)))
		for _, ifc := range c.Interfaces {
			w.uvarint(uint64(pool.id(ifc)))
		}
		w.uvarint(uint64(len(c.Fields)))
		for _, fl := range c.Fields {
			w.uvarint(uint64(pool.id(fl.Name)))
			w.uvarint(uint64(pool.id(fl.Type)))
			w.uvarint(uint64(fl.Flags))
		}
		w.uvarint(uint64(len(c.Methods)))
		for _, m := range c.Methods {
			w.uvarint(uint64(pool.id(m.Name)))
			w.uvarint(uint64(pool.id(m.Return)))
			w.uvarint(uint64(m.Flags))
			w.uvarint(uint64(m.Registers))
			w.uvarint(uint64(len(m.Params)))
			for _, p := range m.Params {
				w.uvarint(uint64(pool.id(p)))
			}
			w.uvarint(uint64(len(m.Code)))
			for i := range m.Code {
				encodeInstr(w, pool, &m.Code[i])
			}
		}
	}

	var out bytes.Buffer
	out.WriteString(magic)
	out.WriteByte(FormatVersion)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(body.Len()))
	out.Write(lenBuf[:])
	out.Write(body.Bytes())
	binary.LittleEndian.PutUint32(lenBuf[:], crc32.ChecksumIEEE(body.Bytes()))
	out.Write(lenBuf[:])
	return out.Bytes(), nil
}

func encodeInstr(w *writer, pool *stringPool, in *Instruction) {
	w.byte(byte(in.Op))
	switch in.Op {
	case OpNop, OpReturnVoid:
	case OpConst:
		w.uvarint(uint64(in.A))
		w.varint(in.Value)
	case OpConstString, OpNewInstance, OpCheckCast:
		w.uvarint(uint64(in.A))
		w.uvarint(uint64(pool.id(in.Str)))
	case OpNewArray, OpInstanceOf:
		w.uvarint(uint64(in.A))
		w.uvarint(uint64(in.B))
		w.uvarint(uint64(pool.id(in.Str)))
	case OpMove, OpArrayLength:
		w.uvarint(uint64(in.A))
		w.uvarint(uint64(in.B))
	case OpMoveResult, OpReturn, OpThrow:
		w.uvarint(uint64(in.A))
	case OpIGet, OpIPut:
		w.uvarint(uint64(in.A))
		w.uvarint(uint64(in.B))
		encodeFieldRef(w, pool, in.Field)
	case OpSGet, OpSPut:
		w.uvarint(uint64(in.A))
		encodeFieldRef(w, pool, in.Field)
	case OpAdd, OpSub, OpMul, OpDiv, OpXor, OpArrayGet, OpArrayPut:
		w.uvarint(uint64(in.A))
		w.uvarint(uint64(in.B))
		w.uvarint(uint64(in.C))
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe:
		w.uvarint(uint64(in.A))
		w.uvarint(uint64(in.B))
		w.uvarint(uint64(in.Target))
	case OpIfEqz, OpIfNez:
		w.uvarint(uint64(in.A))
		w.uvarint(uint64(in.Target))
	case OpGoto:
		w.uvarint(uint64(in.Target))
	default:
		if in.Op.IsInvoke() {
			w.uvarint(uint64(pool.id(in.Method.Class)))
			w.uvarint(uint64(pool.id(in.Method.Name)))
			w.uvarint(uint64(pool.id(in.Method.Sig)))
			w.uvarint(uint64(len(in.Args)))
			for _, a := range in.Args {
				w.uvarint(uint64(a))
			}
		}
	}
}

func encodeFieldRef(w *writer, pool *stringPool, fr FieldRef) {
	w.uvarint(uint64(pool.id(fr.Class)))
	w.uvarint(uint64(pool.id(fr.Name)))
	w.uvarint(uint64(pool.id(fr.Type)))
}

// Decode parses SDEX bytes produced by Encode. It accepts both plain and
// optimized (ODEX) files; IsOptimized reports which one was decoded.
func Decode(data []byte) (*File, error) {
	f, _, err := decode(data)
	return f, err
}

// IsOptimized reports whether the bytes carry the ODEX magic.
func IsOptimized(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == MagicODEX
}

// ErrNotDex is the sentinel wrapped by Decode when the magic is wrong.
var ErrNotDex = fmt.Errorf("dex: not an SDEX file")

func decode(data []byte) (*File, bool, error) {
	if len(data) < 13 {
		return nil, false, fmt.Errorf("%w: %d bytes is too short", ErrNotDex, len(data))
	}
	magic := string(data[:4])
	if magic != Magic && magic != MagicODEX {
		return nil, false, fmt.Errorf("%w: bad magic %q", ErrNotDex, magic)
	}
	if data[4] != FormatVersion {
		return nil, false, fmt.Errorf("dex: unsupported format version %d", data[4])
	}
	bodyLen := binary.LittleEndian.Uint32(data[5:9])
	if int(bodyLen) != len(data)-13 {
		return nil, false, fmt.Errorf("dex: body length %d does not match file size %d", bodyLen, len(data))
	}
	body := data[9 : 9+bodyLen]
	wantCRC := binary.LittleEndian.Uint32(data[9+bodyLen:])
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, false, fmt.Errorf("dex: checksum mismatch: got %08x want %08x", got, wantCRC)
	}

	// One string conversion covers the whole body: every pool entry is a
	// zero-copy substring of it, replacing the per-string copies that
	// used to dominate decode allocations. The substrings share the one
	// backing allocation for as long as the File lives.
	r := &reader{data: body, text: string(body)}
	nStrings := r.count()
	pool := make([]string, 0, min(nStrings, 4096))
	for i := 0; i < nStrings && r.err == nil; i++ {
		pool = append(pool, r.str())
	}
	str := func(id int) string {
		if id < 0 || id >= len(pool) {
			r.fail(fmt.Errorf("dex: string index %d out of range [0,%d)", id, len(pool)))
			return ""
		}
		return pool[id]
	}

	f := &File{}
	nClasses := r.count()
	for i := 0; i < nClasses && r.err == nil; i++ {
		c := &Class{
			Name:       str(r.id()),
			Super:      str(r.id()),
			Flags:      AccessFlags(r.id()),
			SourceFile: str(r.id()),
		}
		for j, n := 0, r.count(); j < n && r.err == nil; j++ {
			c.Interfaces = append(c.Interfaces, str(r.id()))
		}
		for j, n := 0, r.count(); j < n && r.err == nil; j++ {
			c.Fields = append(c.Fields, &Field{
				Name:  str(r.id()),
				Type:  str(r.id()),
				Flags: AccessFlags(r.id()),
			})
		}
		for j, n := 0, r.count(); j < n && r.err == nil; j++ {
			m := &Method{
				Name:      str(r.id()),
				Return:    str(r.id()),
				Flags:     AccessFlags(r.id()),
				Registers: r.id(),
			}
			for k, np := 0, r.count(); k < np && r.err == nil; k++ {
				m.Params = append(m.Params, str(r.id()))
			}
			nCode := r.count()
			m.Code = make([]Instruction, 0, min(nCode, 4096))
			for k := 0; k < nCode && r.err == nil; k++ {
				m.Code = append(m.Code, decodeInstr(r, str))
			}
			c.Methods = append(c.Methods, m)
		}
		f.Classes = append(f.Classes, c)
	}
	if r.err != nil {
		return nil, false, r.err
	}
	if err := f.Validate(); err != nil {
		return nil, false, fmt.Errorf("dex: decode: %w", err)
	}
	return f, magic == MagicODEX, nil
}

func decodeInstr(r *reader, str func(int) string) Instruction {
	op := Opcode(r.byte())
	if !op.Valid() {
		r.fail(fmt.Errorf("dex: invalid opcode %d", op))
		return Instruction{}
	}
	in := Instruction{Op: op}
	switch op {
	case OpNop, OpReturnVoid:
	case OpConst:
		in.A = r.id()
		in.Value = r.varint()
	case OpConstString, OpNewInstance, OpCheckCast:
		in.A = r.id()
		in.Str = str(r.id())
	case OpNewArray, OpInstanceOf:
		in.A = r.id()
		in.B = r.id()
		in.Str = str(r.id())
	case OpMove, OpArrayLength:
		in.A = r.id()
		in.B = r.id()
	case OpMoveResult, OpReturn, OpThrow:
		in.A = r.id()
	case OpIGet, OpIPut:
		in.A = r.id()
		in.B = r.id()
		in.Field = decodeFieldRef(r, str)
	case OpSGet, OpSPut:
		in.A = r.id()
		in.Field = decodeFieldRef(r, str)
	case OpAdd, OpSub, OpMul, OpDiv, OpXor, OpArrayGet, OpArrayPut:
		in.A = r.id()
		in.B = r.id()
		in.C = r.id()
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe:
		in.A = r.id()
		in.B = r.id()
		in.Target = r.id()
	case OpIfEqz, OpIfNez:
		in.A = r.id()
		in.Target = r.id()
	case OpGoto:
		in.Target = r.id()
	default:
		if op.IsInvoke() {
			in.Method = MethodRef{Class: str(r.id()), Name: str(r.id()), Sig: str(r.id())}
			n := r.count()
			in.Args = make([]int, 0, min(n, 256))
			for i := 0; i < n && r.err == nil; i++ {
				in.Args = append(in.Args, r.id())
			}
		}
	}
	return in
}

func decodeFieldRef(r *reader, str func(int) string) FieldRef {
	return FieldRef{Class: str(r.id()), Name: str(r.id()), Type: str(r.id())}
}

// stringPool interns strings for encoding, assigning ids in first-use
// order so the encoding is deterministic.
type stringPool struct {
	ids  map[string]int
	list []string
}

func newStringPool() *stringPool {
	return &stringPool{ids: make(map[string]int)}
}

func (p *stringPool) id(s string) int {
	if id, ok := p.ids[s]; ok {
		return id
	}
	id := len(p.list)
	p.ids[s] = id
	p.list = append(p.list, s)
	return id
}

// poolFile interns every string in the file in deterministic traversal
// order.
func poolFile(p *stringPool, f *File) {
	for _, c := range f.Classes {
		p.id(c.Name)
		p.id(c.Super)
		p.id(c.SourceFile)
		for _, ifc := range c.Interfaces {
			p.id(ifc)
		}
		for _, fl := range c.Fields {
			p.id(fl.Name)
			p.id(fl.Type)
		}
		for _, m := range c.Methods {
			p.id(m.Name)
			p.id(m.Return)
			for _, prm := range m.Params {
				p.id(prm)
			}
			for i := range m.Code {
				in := &m.Code[i]
				switch {
				case in.Op == OpConstString || in.Op == OpNewInstance ||
					in.Op == OpCheckCast || in.Op == OpNewArray || in.Op == OpInstanceOf:
					p.id(in.Str)
				case in.Op.IsInvoke():
					p.id(in.Method.Class)
					p.id(in.Method.Name)
					p.id(in.Method.Sig)
				case in.Op == OpIGet || in.Op == OpIPut || in.Op == OpSGet || in.Op == OpSPut:
					p.id(in.Field.Class)
					p.id(in.Field.Name)
					p.id(in.Field.Type)
				}
			}
		}
	}
}

// writer accumulates the body section.
type writer struct {
	buf *bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *writer) byte(b byte) { w.buf.WriteByte(b) }

func (w *writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *writer) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

// reader consumes the body section, remembering the first error. text
// mirrors data as an immutable string so str() can hand out zero-copy
// substrings instead of converting (and copying) each one.
type reader struct {
	data []byte
	text string
	pos  int
	err  error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail(fmt.Errorf("dex: truncated file at offset %d", r.pos))
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail(fmt.Errorf("dex: bad uvarint at offset %d", r.pos))
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail(fmt.Errorf("dex: bad varint at offset %d", r.pos))
		return 0
	}
	r.pos += n
	return v
}

// id reads a non-negative integer (register, index, flag word).
func (r *reader) id() int {
	v := r.uvarint()
	if v > maxSaneCount {
		r.fail(fmt.Errorf("dex: implausible value %d", v))
		return 0
	}
	return int(v)
}

// count reads a collection size with sanity bounds.
func (r *reader) count() int {
	v := r.uvarint()
	if v > maxSaneCount {
		r.fail(fmt.Errorf("dex: implausible count %d", v))
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.count()
	if r.err != nil {
		return ""
	}
	if r.pos+n > len(r.data) {
		r.fail(fmt.Errorf("dex: truncated string at offset %d", r.pos))
		return ""
	}
	s := r.text[r.pos : r.pos+n]
	r.pos += n
	return s
}

// sortedClassNames returns the class names in the file, sorted. Useful for
// deterministic reporting.
func sortedClassNames(f *File) []string {
	names := make([]string, 0, len(f.Classes))
	for _, c := range f.Classes {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}
