package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/stats"
)

// Membership predicates. The measurement recovers candidate-set
// membership from the pipeline's own static pre-filter, never from the
// generator's ground truth.

func dexCandidate(rec *AppRecord) bool {
	return rec.Result.Status != core.StatusUnpackFailure && rec.Result.PreFilter.HasDexDCL
}

func nativeCandidate(rec *AppRecord) bool {
	return rec.Result.Status != core.StatusUnpackFailure && rec.Result.PreFilter.HasNativeDCL
}

func dexIntercepted(rec *AppRecord) bool    { return len(rec.Result.DexEvents()) > 0 }
func nativeIntercepted(rec *AppRecord) bool { return len(rec.Result.NativeEvents()) > 0 }

// sc scales a paper count to the run's scale for the "paper" column.
func (r *Results) sc(n int) int { return corpus.Scaled(n, r.Scale) }

// TableI renders the download-tracker rules (Table I is the tracker's
// specification; its behaviour is verified by the netsim/core tests and
// exercised by every remote-provenance measurement).
func (r *Results) TableI() string {
	t := stats.NewTable("Table I — download tracker rules (source: URL, sink: File)",
		"Object", "Flows")
	t.Row("URL", "URL -> InputStream")
	t.Row("InputStream", "InputStream -> InputStream; InputStream -> Buffer")
	t.Row("Buffer", "Buffer -> InputStream; Buffer -> OutputStream")
	t.Row("OutputStream", "OutputStream -> Buffer; OutputStream -> OutputStream; OutputStream -> File")
	t.Row("File", "File -> File; File -> InputStream")
	return t.String()
}

// TableII renders the dynamic analysis summary.
func (r *Results) TableII() string {
	p := corpus.Paper()
	type side struct {
		candidates, rewrite, noact, crash, intercepted int
	}
	var dex, nat side
	for _, rec := range r.Records {
		if dexCandidate(rec) {
			dex.candidates++
			switch rec.Result.Status {
			case core.StatusRewriteFailure:
				dex.rewrite++
			case core.StatusNoActivity:
				dex.noact++
			case core.StatusCrash:
				dex.crash++
			}
			if dexIntercepted(rec) {
				dex.intercepted++
			}
		}
		if nativeCandidate(rec) {
			nat.candidates++
			switch rec.Result.Status {
			case core.StatusRewriteFailure:
				nat.rewrite++
			case core.StatusNoActivity:
				nat.noact++
			case core.StatusCrash:
				nat.crash++
			}
			if nativeIntercepted(rec) {
				nat.intercepted++
			}
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Table II — dynamic analysis summary (%d DEX / %d native candidate apps)",
			dex.candidates, nat.candidates),
		"", "DEX measured", "DEX paper", "Native measured", "Native paper")
	row := func(name string, dm, dp, nm, np int) {
		t.Row(name,
			stats.CountPct(dm, dex.candidates), stats.CountPct(dp, r.sc(p.DexCandidates)),
			stats.CountPct(nm, nat.candidates), stats.CountPct(np, r.sc(p.NativeCandidates)))
	}
	row("Failure", dex.rewrite+dex.noact+dex.crash,
		r.sc(p.DexRewriteFailures)+r.sc(p.DexNoActivity)+r.sc(p.DexCrashes),
		nat.rewrite+nat.noact+nat.crash,
		r.sc(p.NativeRewriteFailures)+r.sc(p.NativeNoActivity)+r.sc(p.NativeCrashes))
	row("  Rewriting failure", dex.rewrite, r.sc(p.DexRewriteFailures), nat.rewrite, r.sc(p.NativeRewriteFailures))
	row("  No activity", dex.noact, r.sc(p.DexNoActivity), nat.noact, r.sc(p.NativeNoActivity))
	row("  Crash", dex.crash, r.sc(p.DexCrashes), nat.crash, r.sc(p.NativeCrashes))
	row("Exercised", dex.candidates-dex.rewrite-dex.noact-dex.crash,
		r.sc(p.DexCandidates)-r.sc(p.DexRewriteFailures)-r.sc(p.DexNoActivity)-r.sc(p.DexCrashes),
		nat.candidates-nat.rewrite-nat.noact-nat.crash,
		r.sc(p.NativeCandidates)-r.sc(p.NativeRewriteFailures)-r.sc(p.NativeNoActivity)-r.sc(p.NativeCrashes))
	row("Intercepted", dex.intercepted, r.sc(p.DexIntercepted), nat.intercepted, r.sc(p.NativeIntercepted))
	return t.String()
}

// TableIII renders DCL vs application popularity.
func (r *Results) TableIII() string {
	var dexD, nodexD, natD, nonatD []int64
	var dexR, nodexR, natR, nonatR []int64
	var dexA, nodexA, natA, nonatA []float64
	for _, rec := range r.Records {
		m := rec.Meta
		if dexCandidate(rec) {
			dexD = append(dexD, m.Downloads)
			dexR = append(dexR, int64(m.NumRatings))
			dexA = append(dexA, m.AvgRating)
		} else {
			nodexD = append(nodexD, m.Downloads)
			nodexR = append(nodexR, int64(m.NumRatings))
			nodexA = append(nodexA, m.AvgRating)
		}
		if nativeCandidate(rec) {
			natD = append(natD, m.Downloads)
			natR = append(natR, int64(m.NumRatings))
			natA = append(natA, m.AvgRating)
		} else {
			nonatD = append(nonatD, m.Downloads)
			nonatR = append(nonatR, int64(m.NumRatings))
			nonatA = append(nonatA, m.AvgRating)
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Table III — DCL vs application popularity (%d apps; paper shape: DCL > complement)", len(r.Records)),
		"", "#Downloads", "#Ratings", "Rating", "paper #Downloads", "paper Rating")
	t.Row("DEX", int64(stats.MeanInt64(dexD)), int64(stats.MeanInt64(dexR)), stats.Mean(dexA), 60010, 3.91)
	t.Row("Without DEX", int64(stats.MeanInt64(nodexD)), int64(stats.MeanInt64(nodexR)), stats.Mean(nodexA), 52848, 3.77)
	t.Row("Native", int64(stats.MeanInt64(natD)), int64(stats.MeanInt64(natR)), stats.Mean(natA), 288995, 3.82)
	t.Row("Without Native", int64(stats.MeanInt64(nonatD)), int64(stats.MeanInt64(nonatR)), stats.Mean(nonatA), 75127, 3.79)
	return t.String()
}

// TableIV renders the responsible-entity split.
func (r *Results) TableIV() string {
	p := corpus.Paper()
	type split struct{ third, own, both, total int }
	var dex, nat split
	count := func(s *split, own, third bool) {
		s.total++
		if third {
			s.third++
		}
		if own {
			s.own++
		}
		if own && third {
			s.both++
		}
	}
	for _, rec := range r.Records {
		if dexIntercepted(rec) {
			own, third := rec.Result.Entities(core.KindDex)
			count(&dex, own, third)
		}
		if nativeIntercepted(rec) {
			own, third := rec.Result.Entities(core.KindNative)
			count(&nat, own, third)
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Table IV — responsible entity of DCL (%d DEX / %d native intercepted apps)",
			dex.total, nat.total),
		"", "3rd-party", "Own", "3rd-party & Own", "paper 3rd-party", "paper Own", "paper both")
	t.Row("DEX", stats.CountPct(dex.third, dex.total), stats.CountPct(dex.own, dex.total),
		stats.CountPct(dex.both, dex.total),
		r.sc(16755), r.sc(p.DexOwnOnly)+r.sc(p.DexBoth), r.sc(p.DexBoth))
	t.Row("Native", stats.CountPct(nat.third, nat.total), stats.CountPct(nat.own, nat.total),
		stats.CountPct(nat.both, nat.total),
		r.sc(11834), r.sc(p.NativeOwnOnly)+r.sc(p.NativeBoth), r.sc(p.NativeBoth))
	return t.String()
}

// TableV renders the remote-fetch (policy-violating) apps.
func (r *Results) TableV() string {
	var rows []*AppRecord
	for _, rec := range r.Records {
		if len(rec.Result.RemoteURLs()) > 0 {
			rows = append(rows, rec)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Meta.Package < rows[j].Meta.Package })
	t := stats.NewTable(
		fmt.Sprintf("Table V — apps executing remotely fetched binaries: %d measured (paper: %d)",
			len(rows), r.sc(corpus.Paper().RemoteApps)),
		"Package", "Origin")
	for _, rec := range rows {
		t.Row(rec.Meta.Package, strings.Join(rec.Result.RemoteURLs(), " "))
	}
	return t.String()
}

// TableVI renders obfuscation adoption. Native usage is confirmed by the
// dynamic output, as in the paper.
func (r *Results) TableVI() string {
	p := corpus.Paper()
	total := len(r.Records)
	var lex, refl, nat, packd, anti int
	for _, rec := range r.Records {
		o := rec.Result.Obfuscation
		if o.Lexical {
			lex++
		}
		if o.Reflection {
			refl++
		}
		if nativeIntercepted(rec) {
			nat++
		}
		if o.DEXEncryption {
			packd++
		}
		if o.AntiDecompile {
			anti++
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Table VI — obfuscation techniques (%d apps)", total),
		"Technique", "#Apps measured", "#Apps paper")
	t.Row("Lexical", stats.CountPct(lex, total), stats.CountPct(r.sc(p.Lexical), r.sc(p.Total)))
	t.Row("Reflection", stats.CountPct(refl, total), stats.CountPct(r.sc(p.Reflection), r.sc(p.Total)))
	t.Row("Native", stats.CountPct(nat, total), stats.CountPct(r.sc(p.NativeIntercepted), r.sc(p.Total)))
	t.Row("DEX encryption", stats.CountPct(packd, total), stats.CountPct(r.sc(p.Packed), r.sc(p.Total)))
	t.Row("Anti-decompilation", stats.CountPct(anti, total), stats.CountPct(r.sc(p.AntiDecompile), r.sc(p.Total)))
	return t.String()
}

// Figure3 renders DEX-encryption apps per category.
func (r *Results) Figure3() string {
	byCat := map[string]int{}
	total := 0
	for _, rec := range r.Records {
		if rec.Result.Obfuscation.DEXEncryption {
			byCat[rec.Meta.Category]++
			total++
		}
	}
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if byCat[cats[i]] != byCat[cats[j]] {
			return byCat[cats[i]] > byCat[cats[j]]
		}
		return cats[i] < cats[j]
	})
	t := stats.NewTable(
		fmt.Sprintf("Figure 3 — #apps with DEX encryption per category (%d apps; paper shape: Entertainment/Tools/Shopping dominant)", total),
		"Category", "#Apps", "")
	for _, c := range cats {
		t.Row(c, byCat[c], strings.Repeat("#", byCat[c]))
	}
	return t.String()
}

// TableVII renders the malware families found in DCL.
func (r *Results) TableVII() string {
	type fam struct {
		apps   int
		files  int
		sample string
		dls    int64
	}
	fams := map[string]*fam{}
	for _, rec := range r.Records {
		if len(rec.Result.Malware) == 0 {
			continue
		}
		seen := map[string]bool{}
		for _, hit := range rec.Result.Malware {
			f := fams[hit.Family]
			if f == nil {
				f = &fam{}
				fams[hit.Family] = f
			}
			if !seen[hit.Family] {
				seen[hit.Family] = true
				f.apps++
				if rec.Meta.Downloads > f.dls {
					f.dls = rec.Meta.Downloads
					f.sample = rec.Meta.Package
				}
			}
			f.files++
		}
	}
	names := make([]string, 0, len(fams))
	totalApps, totalFiles := 0, 0
	for n, f := range fams {
		names = append(names, n)
		totalApps += f.apps
		totalFiles += f.files
	}
	sort.Strings(names)
	p := corpus.Paper()
	t := stats.NewTable(
		fmt.Sprintf("Table VII — malware detected in DCL: %d apps / %d files measured (paper: %d apps / %d files)",
			totalApps, totalFiles,
			r.sc(p.SwissApps)+r.sc(p.AdwareApps)+r.sc(p.ChathookApps), r.sc(p.MalwareFiles)),
		"Family", "#Apps", "#Files", "Sample app (#Downloads)")
	for _, n := range names {
		f := fams[n]
		t.Row(n, f.apps, f.files, fmt.Sprintf("%s (%d)", f.sample, f.dls))
	}
	return t.String()
}

// TableVIII renders malicious loading under the four runtime
// configurations.
func (r *Results) TableVIII() string {
	totalFiles := 0
	loaded := map[core.ReplayConfig]int{}
	for _, rec := range r.Records {
		if rec.MalwarePaths == nil {
			continue
		}
		totalFiles += len(rec.MalwarePaths)
		for _, cfg := range core.AllReplayConfigs {
			for path := range rec.MalwarePaths {
				if rec.ReplayLoaded[cfg][path] {
					loaded[cfg]++
				}
			}
		}
	}
	p := corpus.Paper()
	paperTotal := r.sc(p.MalwareFiles)
	t := stats.NewTable(
		fmt.Sprintf("Table VIII — malicious code loaded under runtime configurations (%d files; paper: %d)",
			totalFiles, paperTotal),
		"Configuration", "#Files intercepted", "paper")
	t.Row("System time", stats.CountPct(loaded[core.ConfigTimeBeforeRelease], totalFiles),
		stats.CountPct(paperTotal-r.sc(p.GateTime), paperTotal))
	t.Row("Airplane mode/WiFi ON", stats.CountPct(loaded[core.ConfigAirplaneWiFiOn], totalFiles),
		stats.CountPct(paperTotal-r.sc(p.GateAirplane), paperTotal))
	t.Row("Airplane mode/WiFi OFF", stats.CountPct(loaded[core.ConfigAirplaneWiFiOff], totalFiles),
		stats.CountPct(paperTotal-r.sc(p.GateAirplane)-r.sc(p.GateConn), paperTotal))
	t.Row("Location OFF", stats.CountPct(loaded[core.ConfigLocationOff], totalFiles),
		stats.CountPct(paperTotal-r.sc(p.GateLocation), paperTotal))
	return t.String()
}

// TableIX renders the vulnerable applications.
func (r *Results) TableIX() string {
	type key struct {
		code core.Kind
		kind core.VulnKind
	}
	groups := map[key][]*AppRecord{}
	for _, rec := range r.Records {
		seen := map[key]bool{}
		for _, v := range rec.Result.Vulns {
			k := key{v.Code, v.Kind}
			if !seen[k] {
				seen[k] = true
				groups[k] = append(groups[k], rec)
			}
		}
	}
	p := corpus.Paper()
	t := stats.NewTable("Table IX — vulnerable applications detected",
		"", "Category", "#Apps", "paper", "Packages (#Downloads)")
	row := func(label string, k key, paper int) {
		recs := groups[k]
		sort.Slice(recs, func(i, j int) bool { return recs[i].Meta.Downloads > recs[j].Meta.Downloads })
		var pkgs []string
		for _, rec := range recs {
			pkgs = append(pkgs, fmt.Sprintf("%s (%d)", rec.Meta.Package, rec.Meta.Downloads))
		}
		t.Row(label, string(k.kind), len(recs), paper, strings.Join(pkgs, ", "))
	}
	row("DEX", key{core.KindDex, core.VulnOtherAppInternal}, 0)
	row("DEX", key{core.KindDex, core.VulnExternalStorage}, r.sc(p.VulnDexExternal))
	row("Native", key{core.KindNative, core.VulnOtherAppInternal}, r.sc(p.VulnNativeIntern))
	row("Native", key{core.KindNative, core.VulnExternalStorage}, 0)
	return t.String()
}

// TableX renders privacy tracking in loaded DEX code.
func (r *Results) TableX() string {
	total := 0 // apps with intercepted DEX
	apps := map[android.DataType]int{}
	exclusive := map[android.DataType]int{}
	for _, rec := range r.Records {
		if !dexIntercepted(rec) {
			continue
		}
		total++
		if rec.Result.Privacy == nil {
			continue
		}
		for _, dt := range rec.Result.Privacy.LeakedTypes() {
			apps[dt]++
			if rec.Result.PrivacyByEntity[string(dt)] {
				exclusive[dt]++
			}
		}
	}
	p := corpus.Paper()
	paperRow := map[string]corpus.TableXRow{}
	for _, row := range corpus.TableX {
		paperRow[row.Type] = row
	}
	t := stats.NewTable(
		fmt.Sprintf("Table X — privacy tracking in dynamically loaded code (%d apps with intercepted DEX)", total),
		"Data type", "Categ", "#Apps", "Exclusively 3rd-party", "paper #Apps", "paper excl")
	for _, dt := range android.AllDataTypes {
		var paperApps, paperExcl int
		if dt == android.DTSettings {
			paperApps = r.sc(p.AdApps) + r.sc(p.SettingsReaders)
			paperExcl = paperApps - r.sc(p.OwnSettings)
		} else if row, ok := paperRow[string(dt)]; ok {
			paperApps = r.sc(row.Apps)
			paperExcl = r.sc(row.Exclusive)
		}
		t.Row(string(dt), string(android.CategoryOf[dt]),
			apps[dt], stats.CountPct(exclusive[dt], max(apps[dt], 1)),
			paperApps, paperExcl)
	}
	return t.String()
}

// Report renders every table and figure.
func (r *Results) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DyDroid measurement: %d apps at scale %.4f (%.1fs)\n\n",
		len(r.Records), r.Scale, r.Elapsed.Seconds())
	for _, section := range []string{
		r.TableI(), r.TableII(), r.TableIII(), r.TableIV(), r.TableV(),
		r.TableVI(), r.Figure3(), r.TableVII(), r.TableVIII(), r.TableIX(),
		r.TableX(),
	} {
		b.WriteString(section)
		b.WriteByte('\n')
	}
	return b.String()
}
