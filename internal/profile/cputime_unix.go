//go:build unix

package profile

import "syscall"

// processCPUNanos returns the process's cumulative user+system CPU time.
// It is monotonic, so deltas across a window or a pipeline stage measure
// CPU cost. Returns 0 when the platform refuses getrusage — callers treat
// 0-before/0-after as "no attribution available".
func processCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
